(* Bounded-variable two-phase primal simplex with a dual-simplex
   re-optimizer, on dense rational tableaus.

   Variable bounds [lo, up] are handled natively: a nonbasic variable
   sits at its lower or upper bound and the ratio test considers both
   leaving directions plus a bound flip of the entering variable.  This
   keeps the tableau at one row per constraint instead of lowering each
   finite upper bound to an explicit row.

   The tableau is a persistent object: branch & bound copies a parent's
   final (optimal) tableau, tightens one variable's bounds, and
   re-optimizes with dual-simplex pivots, which is far cheaper than a
   phase-1 cold start.  Everything is exact rational arithmetic, so
   "zero" means zero and feasibility verdicts are decisive. *)

(* Hoisted counters: bumping is one int store, nothing allocated on the
   pivot path. *)
let c_solves = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.solves"
let c_pivots = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.pivots"

let c_iterations =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.iterations"

let c_warm =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.warm_starts"

type row = { coeffs : Rat.t array; sense : Model.sense; rhs : Rat.t }
type status = Optimal | Infeasible | Unbounded

type result = { status : status; objective : Rat.t; solution : Rat.t array }

exception Stalled

type vstate = Basic of int | At_lower | At_upper

type t = {
  m : int;
  nstruct : int;
  art_start : int;        (* columns >= art_start are artificials *)
  ncols : int;
  a : Rat.t array array;  (* m x ncols, basic columns kept at identity *)
  basis : int array;      (* m, column basic in each row *)
  state : vstate array;   (* ncols *)
  xval : Rat.t array;     (* ncols, value of every variable; nonbasic
                             variables sit exactly on a bound *)
  lo : Rat.t array;       (* ncols *)
  up : Rat.t option array;(* ncols, None = +infinity *)
  cost : Rat.t array;     (* ncols, phase-2 costs (shared across copies) *)
  z : Rat.t array;        (* ncols, reduced costs of the current phase *)
}

let rat_abs x = if Rat.sign x < 0 then Rat.neg x else x

let is_fixed t j =
  match t.up.(j) with Some u -> Rat.( = ) u t.lo.(j) | None -> false

(* Pivot on (row r, col c): scale row r so a.(r).(c) = 1, eliminate
   column c from every other row and from the reduced costs.  Values in
   [xval] are the caller's responsibility (pivoting is a change of
   basis, not of the current point). *)
let pivot t r c =
  Clara_obs.Metrics.incr c_pivots;
  let arc = t.a.(r).(c) in
  assert (not (Rat.is_zero arc));
  if not (Rat.( = ) arc Rat.one) then begin
    let inv = Rat.inv arc in
    for j = 0 to t.ncols - 1 do
      if not (Rat.is_zero t.a.(r).(j)) then t.a.(r).(j) <- Rat.mul t.a.(r).(j) inv
    done
  end;
  for i = 0 to t.m - 1 do
    if i <> r && not (Rat.is_zero t.a.(i).(c)) then begin
      let f = t.a.(i).(c) in
      for j = 0 to t.ncols - 1 do
        if not (Rat.is_zero t.a.(r).(j)) then
          t.a.(i).(j) <- Rat.sub t.a.(i).(j) (Rat.mul f t.a.(r).(j))
      done
    end
  done;
  if not (Rat.is_zero t.z.(c)) then begin
    let f = t.z.(c) in
    for j = 0 to t.ncols - 1 do
      if not (Rat.is_zero t.a.(r).(j)) then
        t.z.(j) <- Rat.sub t.z.(j) (Rat.mul f t.a.(r).(j))
    done
  end;
  t.basis.(r) <- c;
  t.state.(c) <- Basic r

let create ~c ~rows ~bounds =
  let nstruct = Array.length c in
  if Array.length bounds <> nstruct then
    invalid_arg "Simplex.create: bounds arity mismatch";
  List.iter
    (fun r ->
      if Array.length r.coeffs <> nstruct then
        invalid_arg "Simplex.solve: row arity mismatch")
    rows;
  (* Normalize Ge rows to Le so every slack has coefficient +1 and lower
     bound 0; an Eq slack is fixed at [0, 0]. *)
  let rows =
    Array.of_list rows
    |> Array.map (fun r ->
           match r.sense with
           | Model.Ge ->
               { coeffs = Array.map Rat.neg r.coeffs;
                 sense = Model.Le;
                 rhs = Rat.neg r.rhs }
           | Model.Le | Model.Eq -> r)
  in
  let m = Array.length rows in
  (* Residual of each row at the all-variables-at-lower-bound point. *)
  let resid =
    Array.map
      (fun r ->
        let acc = ref r.rhs in
        for j = 0 to nstruct - 1 do
          if not (Rat.is_zero r.coeffs.(j)) then
            acc := Rat.sub !acc (Rat.mul r.coeffs.(j) (fst bounds.(j)))
        done;
        !acc)
      rows
  in
  (* A row can start without an artificial iff its slack can absorb the
     residual: nonnegative for Le, exactly zero for Eq. *)
  let unsatisfied i =
    match rows.(i).sense with
    | Model.Le -> Rat.sign resid.(i) < 0
    | Model.Eq -> Rat.sign resid.(i) <> 0
    | Model.Ge -> assert false
  in
  (* Crash heuristic: flipping a bounded variable to its upper bound
     sometimes zeroes an Eq row's residual exactly (e.g. the Σx = 1
     assignment rows of mapping models, where any binary in the row
     works).  Each successful flip saves an artificial variable and the
     phase-1 pivots needed to drive it out.  A flip is only accepted if
     no currently-satisfied row becomes unsatisfied. *)
  let at_upper = Array.make nstruct false in
  for i = 0 to m - 1 do
    if rows.(i).sense = Model.Eq && Rat.sign resid.(i) <> 0 then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < nstruct do
        (match snd bounds.(!j) with
        | Some u when not at_upper.(!j) ->
            let cj = rows.(i).coeffs.(!j) in
            let w = Rat.sub u (fst bounds.(!j)) in
            if
              (not (Rat.is_zero cj))
              && Rat.sign w > 0
              && Rat.( = ) (Rat.mul cj w) resid.(i)
            then begin
              let ok = ref true in
              for k = 0 to m - 1 do
                if
                  !ok && k <> i
                  && (not (Rat.is_zero rows.(k).coeffs.(!j)))
                  && not (unsatisfied k)
                then begin
                  let r' =
                    Rat.sub resid.(k) (Rat.mul rows.(k).coeffs.(!j) w)
                  in
                  let bad =
                    match rows.(k).sense with
                    | Model.Le -> Rat.sign r' < 0
                    | Model.Eq -> Rat.sign r' <> 0
                    | Model.Ge -> assert false
                  in
                  if bad then ok := false
                end
              done;
              if !ok then begin
                at_upper.(!j) <- true;
                for k = 0 to m - 1 do
                  if not (Rat.is_zero rows.(k).coeffs.(!j)) then
                    resid.(k) <-
                      Rat.sub resid.(k) (Rat.mul rows.(k).coeffs.(!j) w)
                done;
                found := true
              end
            end
        | _ -> ());
        incr j
      done
    end
  done;
  (* The slack absorbs as much of the residual as its own bounds allow;
     an artificial picks up the rest. *)
  let sval =
    Array.init m (fun i ->
        match rows.(i).sense with
        | Model.Le -> if Rat.sign resid.(i) >= 0 then resid.(i) else Rat.zero
        | Model.Eq -> Rat.zero
        | Model.Ge -> assert false)
  in
  let needs_art = Array.init m (fun i -> not (Rat.( = ) sval.(i) resid.(i))) in
  let n_art = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 needs_art in
  let art_start = nstruct + m in
  let ncols = art_start + n_art in
  let a = Array.init m (fun _ -> Array.make ncols Rat.zero) in
  let basis = Array.make m (-1) in
  let state = Array.make ncols At_lower in
  let xval = Array.make ncols Rat.zero in
  let lo = Array.make ncols Rat.zero in
  let up = Array.make ncols None in
  let cost = Array.make ncols Rat.zero in
  for j = 0 to nstruct - 1 do
    let l, u = bounds.(j) in
    lo.(j) <- l;
    up.(j) <- u;
    cost.(j) <- c.(j);
    if at_upper.(j) then begin
      state.(j) <- At_upper;
      xval.(j) <- (match u with Some u -> u | None -> assert false)
    end
    else xval.(j) <- l
  done;
  let next_art = ref art_start in
  Array.iteri
    (fun i r ->
      let scol = nstruct + i in
      (match r.sense with
      | Model.Le -> up.(scol) <- None
      | Model.Eq -> up.(scol) <- Some Rat.zero
      | Model.Ge -> assert false);
      let delta = Rat.sub resid.(i) sval.(i) in
      if Rat.is_zero delta then begin
        (* Slack absorbs the whole residual: make it basic. *)
        Array.blit r.coeffs 0 a.(i) 0 nstruct;
        a.(i).(scol) <- Rat.one;
        basis.(i) <- scol;
        state.(scol) <- Basic i;
        xval.(scol) <- sval.(i)
      end
      else begin
        (* Scale the row so the artificial enters with coefficient +1
           and a nonnegative basic value. *)
        let sigma = if Rat.sign delta > 0 then Rat.one else Rat.minus_one in
        for j = 0 to nstruct - 1 do
          if not (Rat.is_zero r.coeffs.(j)) then
            a.(i).(j) <- Rat.mul sigma r.coeffs.(j)
        done;
        a.(i).(scol) <- sigma;
        let acol = !next_art in
        incr next_art;
        a.(i).(acol) <- Rat.one;
        basis.(i) <- acol;
        state.(acol) <- Basic i;
        xval.(acol) <- rat_abs delta;
        xval.(scol) <- sval.(i)
      end)
    rows;
  { m; nstruct; art_start; ncols; a; basis; state; xval; lo; up; cost;
    z = Array.make ncols Rat.zero }

let copy t =
  { t with
    a = Array.map Array.copy t.a;
    basis = Array.copy t.basis;
    state = Array.copy t.state;
    xval = Array.copy t.xval;
    lo = Array.copy t.lo;
    up = Array.copy t.up;
    z = Array.copy t.z }

(* Entering column for the primal, among non-artificial, non-fixed
   nonbasic columns whose reduced cost improves the objective in their
   feasible direction.  Dantzig pricing (largest |reduced cost|) by
   default; [bland] switches to smallest-index selection, which
   {!primal_iterate} enables during degenerate stalls so termination
   stays guaranteed. *)
let find_entering t ~bland =
  let best = ref (-1) in
  let best_score = ref Rat.zero in
  (try
     for j = 0 to t.art_start - 1 do
       let eligible =
         (not (is_fixed t j))
         && (match t.state.(j) with
            | Basic _ -> false
            | At_lower -> Rat.sign t.z.(j) < 0
            | At_upper -> Rat.sign t.z.(j) > 0)
       in
       if eligible then
         if bland then begin
           best := j;
           raise Exit
         end
         else begin
           let score = rat_abs t.z.(j) in
           if !best < 0 || Rat.( < ) !best_score score then begin
             best := j;
             best_score := score
           end
         end
     done
   with Exit -> ());
  !best

(* Shift every basic value for a move of nonbasic column [j] by [d]. *)
let shift_for t j d =
  for i = 0 to t.m - 1 do
    let aij = t.a.(i).(j) in
    if not (Rat.is_zero aij) then begin
      let k = t.basis.(i) in
      t.xval.(k) <- Rat.sub t.xval.(k) (Rat.mul aij d)
    end
  done

(* Primal iterations until optimal or unbounded.  Assumes the current
   point is primal feasible and [z] holds the current phase's reduced
   costs. *)
let primal_iterate t =
  (* Consecutive degenerate (zero-step) iterations before falling back
     from Dantzig to Bland pricing; any strict improvement resets it. *)
  let stall_limit = 20 + (2 * t.m) in
  let stalled = ref 0 in
  let rec loop () =
    Clara_obs.Metrics.incr c_iterations;
    let bland = !stalled > stall_limit in
    let e = find_entering t ~bland in
    if e < 0 then `Optimal
    else begin
      let dir =
        match t.state.(e) with
        | At_lower -> 1
        | At_upper -> -1
        | Basic _ -> assert false
      in
      (* Ratio test: best = -2 none, -1 bound flip of [e], i >= 0 row. *)
      let best = ref (-2) in
      let best_cap = ref Rat.zero in
      let best_leave_upper = ref false in
      (match t.up.(e) with
      | Some u ->
          best := -1;
          best_cap := Rat.sub u t.lo.(e)
      | None -> ());
      for i = 0 to t.m - 1 do
        let aie = t.a.(i).(e) in
        if not (Rat.is_zero aie) then begin
          let delta = if dir > 0 then aie else Rat.neg aie in
          let k = t.basis.(i) in
          let cand =
            if Rat.sign delta > 0 then
              Some (Rat.div (Rat.sub t.xval.(k) t.lo.(k)) delta, false)
            else
              match t.up.(k) with
              | Some uk -> Some (Rat.div (Rat.sub uk t.xval.(k)) (Rat.neg delta), true)
              | None -> None
          in
          match cand with
          | None -> ()
          | Some (cap, leave_upper) ->
              (* Tie-break: Bland mode picks the smallest leaving
                 variable index (termination); Dantzig mode picks the
                 largest, which drives artificials — the highest
                 columns — out of the basis as early as possible.  A
                 tied bound flip is kept (it strictly improves). *)
              let better =
                !best = -2
                || Rat.( < ) cap !best_cap
                || Rat.( = ) cap !best_cap
                   && !best >= 0
                   && (if bland then t.basis.(i) < t.basis.(!best)
                       else t.basis.(i) > t.basis.(!best))
              in
              if better then begin
                best := i;
                best_cap := cap;
                best_leave_upper := leave_upper
              end
        end
      done;
      if !best = -2 then `Unbounded
      else begin
        let d = if dir > 0 then !best_cap else Rat.neg !best_cap in
        if Rat.is_zero d then incr stalled
        else begin
          stalled := 0;
          shift_for t e d;
          t.xval.(e) <- Rat.add t.xval.(e) d
        end;
        if !best = -1 then begin
          (* Bound flip: [e] jumps to its opposite bound, no pivot. *)
          (match t.state.(e) with
          | At_lower ->
              t.state.(e) <- At_upper;
              t.xval.(e) <- (match t.up.(e) with Some u -> u | None -> assert false)
          | At_upper ->
              t.state.(e) <- At_lower;
              t.xval.(e) <- t.lo.(e)
          | Basic _ -> assert false)
        end
        else begin
          let r = !best in
          let k = t.basis.(r) in
          (* Snap the leaving variable exactly onto the bound it hits. *)
          if !best_leave_upper then
            t.xval.(k) <- (match t.up.(k) with Some uk -> uk | None -> assert false)
          else t.xval.(k) <- t.lo.(k);
          pivot t r e;
          t.state.(k) <- (if !best_leave_upper then At_upper else At_lower)
        end;
        loop ()
      end
    end
  in
  loop ()

(* Install phase-2 reduced costs: z = cost reduced w.r.t. the current
   basis.  Basic columns are identity, so one elimination per row. *)
let install_phase2_costs t =
  Array.blit t.cost 0 t.z 0 t.ncols;
  for i = 0 to t.m - 1 do
    let f = t.z.(t.basis.(i)) in
    if not (Rat.is_zero f) then
      for j = 0 to t.ncols - 1 do
        if not (Rat.is_zero t.a.(i).(j)) then
          t.z.(j) <- Rat.sub t.z.(j) (Rat.mul f t.a.(i).(j))
      done
  done

let empty_interval t =
  let bad = ref false in
  for j = 0 to t.ncols - 1 do
    match t.up.(j) with
    | Some u when Rat.( < ) u t.lo.(j) -> bad := true
    | _ -> ()
  done;
  !bad

let solve_primal t =
  Clara_obs.Metrics.incr c_solves;
  if empty_interval t then Infeasible
  else begin
    let feasible =
      if t.ncols = t.art_start then true
      else begin
        (* Phase 1: minimize the sum of artificials.  Initialize reduced
           costs so basic artificial columns read zero. *)
        Array.fill t.z 0 t.ncols Rat.zero;
        for j = t.art_start to t.ncols - 1 do
          t.z.(j) <- Rat.one
        done;
        for i = 0 to t.m - 1 do
          if t.basis.(i) >= t.art_start then
            for j = 0 to t.ncols - 1 do
              if not (Rat.is_zero t.a.(i).(j)) then
                t.z.(j) <- Rat.sub t.z.(j) t.a.(i).(j)
            done
        done;
        (match primal_iterate t with
        | `Unbounded -> assert false (* phase-1 objective bounded below by 0 *)
        | `Optimal -> ());
        let infeas = ref Rat.zero in
        for j = t.art_start to t.ncols - 1 do
          infeas := Rat.add !infeas t.xval.(j)
        done;
        if Rat.sign !infeas <> 0 then false
        else begin
          (* Drive zero-level basic artificials out with degenerate
             pivots where possible; a row with no eligible column is
             redundant and harmlessly keeps its artificial basic. *)
          for i = 0 to t.m - 1 do
            if t.basis.(i) >= t.art_start then begin
              let piv = ref (-1) in
              for j = 0 to t.art_start - 1 do
                if !piv < 0 && not (Rat.is_zero t.a.(i).(j)) then piv := j
              done;
              if !piv >= 0 then begin
                let k = t.basis.(i) in
                pivot t i !piv;
                t.state.(k) <- At_lower
              end
            end
          done;
          (* Pin artificials at zero: as fixed variables they can never
             re-enter, in this solve or any warm-started descendant. *)
          for j = t.art_start to t.ncols - 1 do
            t.lo.(j) <- Rat.zero;
            t.up.(j) <- Some Rat.zero
          done;
          true
        end
      end
    in
    if not feasible then Infeasible
    else begin
      install_phase2_costs t;
      match primal_iterate t with
      | `Optimal -> Optimal
      | `Unbounded -> Unbounded
    end
  end

let set_bound t j (l, u) =
  if j < 0 || j >= t.nstruct then invalid_arg "Simplex.set_bound: bad variable";
  t.lo.(j) <- l;
  t.up.(j) <- u;
  (* A nonbasic variable must sit exactly on its bound: slide it there
     and push the move into the basic values.  Basic variables are left
     alone; any bound violation is the dual simplex's job. *)
  match t.state.(j) with
  | Basic _ -> ()
  | At_lower ->
      let d = Rat.sub l t.xval.(j) in
      if not (Rat.is_zero d) then shift_for t j d;
      t.xval.(j) <- l
  | At_upper -> (
      match u with
      | Some u' ->
          let d = Rat.sub u' t.xval.(j) in
          if not (Rat.is_zero d) then shift_for t j d;
          t.xval.(j) <- u'
      | None ->
          let d = Rat.sub l t.xval.(j) in
          if not (Rat.is_zero d) then shift_for t j d;
          t.xval.(j) <- l;
          t.state.(j) <- At_lower)

let reoptimize t =
  Clara_obs.Metrics.incr c_warm;
  if empty_interval t then Infeasible
  else begin
    (* Dual simplex requires dual feasibility.  A copy of an optimal
       parent tableau with tightened bounds has it (reduced costs are
       untouched by set_bound); anything else must cold-start. *)
    for j = 0 to t.art_start - 1 do
      if not (is_fixed t j) then
        match t.state.(j) with
        | Basic _ -> ()
        | At_lower -> if Rat.sign t.z.(j) < 0 then raise Stalled
        | At_upper -> if Rat.sign t.z.(j) > 0 then raise Stalled
    done;
    let budget = ref (10_000 + (50 * (t.m + t.ncols))) in
    let rec loop () =
      Clara_obs.Metrics.incr c_iterations;
      decr budget;
      if !budget <= 0 then raise Stalled;
      (* Leaving: basic variable violating a bound, smallest variable
         index first (Bland). *)
      let row = ref (-1) in
      let below = ref false in
      for i = 0 to t.m - 1 do
        let k = t.basis.(i) in
        let viol_below = Rat.( < ) t.xval.(k) t.lo.(k) in
        let viol_above =
          match t.up.(k) with Some u -> Rat.( < ) u t.xval.(k) | None -> false
        in
        if (viol_below || viol_above) && (!row < 0 || k < t.basis.(!row)) then begin
          row := i;
          below := viol_below
        end
      done;
      if !row < 0 then Optimal
      else begin
        let r = !row in
        let k = t.basis.(r) in
        let going_up = !below in
        (* Entering: dual ratio test, min |z_j| / |a_rj| over columns
           whose sign keeps the reduced costs dual feasible; first
           (smallest) j wins ties. *)
        let q = ref (-1) in
        let best_theta = ref Rat.zero in
        for j = 0 to t.art_start - 1 do
          if not (is_fixed t j) then begin
            let arj = t.a.(r).(j) in
            if not (Rat.is_zero arj) then begin
              let compatible =
                match t.state.(j) with
                | Basic _ -> false
                | At_lower -> if going_up then Rat.sign arj < 0 else Rat.sign arj > 0
                | At_upper -> if going_up then Rat.sign arj > 0 else Rat.sign arj < 0
              in
              if compatible then begin
                let theta = Rat.div (rat_abs t.z.(j)) (rat_abs arj) in
                if !q < 0 || Rat.( < ) theta !best_theta then begin
                  q := j;
                  best_theta := theta
                end
              end
            end
          end
        done;
        if !q < 0 then Infeasible
        else begin
          let q = !q in
          let target =
            if going_up then t.lo.(k)
            else match t.up.(k) with Some u -> u | None -> assert false
          in
          let delta = Rat.div (Rat.sub t.xval.(k) target) t.a.(r).(q) in
          shift_for t q delta;
          t.xval.(q) <- Rat.add t.xval.(q) delta;
          t.xval.(k) <- target;
          pivot t r q;
          t.state.(k) <- (if going_up then At_lower else At_upper);
          loop ()
        end
      end
    in
    loop ()
  end

let objective_value t =
  let acc = ref Rat.zero in
  for j = 0 to t.nstruct - 1 do
    if not (Rat.is_zero t.cost.(j)) then
      acc := Rat.add !acc (Rat.mul t.cost.(j) t.xval.(j))
  done;
  !acc

let solution t = Array.sub t.xval 0 t.nstruct

let solve ~c ~rows =
  let nstruct = Array.length c in
  let bounds = Array.make nstruct (Rat.zero, None) in
  let t = create ~c ~rows ~bounds in
  match solve_primal t with
  | Infeasible ->
      { status = Infeasible; objective = Rat.zero;
        solution = Array.make nstruct Rat.zero }
  | Unbounded -> { status = Unbounded; objective = Rat.zero; solution = solution t }
  | Optimal ->
      { status = Optimal; objective = objective_value t; solution = solution t }
