type result =
  | Tightened of (Rat.t * Rat.t option) array
  | Proven_infeasible

(* Minimum/maximum activity of a linear form under current bounds.
   [None] stands for an infinite activity (a positively-weighted
   unbounded-above variable, for maximum). *)
let activity bounds terms ~extreme =
  (* extreme = `Min or `Max *)
  List.fold_left
    (fun acc (v, c) ->
      match acc with
      | None -> None
      | Some a -> (
          let lb, ub = bounds.(v) in
          let s = Rat.sign c in
          if s = 0 then Some a
          else
            let pick_lower = (s > 0) = (extreme = `Min) in
            if pick_lower then Some (Rat.add a (Rat.mul c lb))
            else
              match ub with
              | Some u -> Some (Rat.add a (Rat.mul c u))
              | None -> None))
    (Some Rat.zero) terms

let run ?(max_passes = 10) ?bounds model =
  let nv = Model.num_vars model in
  let bounds =
    match bounds with
    | Some b ->
        if Array.length b <> nv then invalid_arg "Presolve.run: bounds arity";
        Array.copy b
    | None -> Array.init nv (fun v -> Model.var_bounds model v)
  in
  let is_int v =
    match Model.var_type model v with
    | Model.Integer | Model.Binary -> true
    | Model.Continuous -> false
  in
  let infeasible = ref false in
  let changed = ref true in
  let round_int v =
    if is_int v then begin
      let lb, ub = bounds.(v) in
      let lb' = Rat.of_bigint (Rat.ceil lb) in
      let ub' = Option.map (fun u -> Rat.of_bigint (Rat.floor u)) ub in
      bounds.(v) <- (lb', ub')
    end
  in
  let tighten_lb v x =
    let lb, ub = bounds.(v) in
    if Rat.( > ) x lb then begin
      bounds.(v) <- (x, ub);
      round_int v;
      changed := true
    end
  in
  let tighten_ub v x =
    let lb, ub = bounds.(v) in
    let better = match ub with None -> true | Some u -> Rat.( < ) x u in
    if better then begin
      bounds.(v) <- (lb, Some x);
      round_int v;
      changed := true
    end
  in
  let rows = ref [] in
  Model.iter_constraints model (fun ~name:_ e sense rhs ->
      let terms = Lin_expr.terms e in
      let k = Lin_expr.constant e in
      let rhs = Rat.sub rhs k in
      (* Normalize to a list of (terms, rhs) upper-bound rows:
         Σ a x <= rhs.  Ge becomes a negated Le; Eq becomes both. *)
      let neg_terms = List.map (fun (v, c) -> (v, Rat.neg c)) terms in
      match sense with
      | Model.Le -> rows := (terms, rhs) :: !rows
      | Model.Ge -> rows := (neg_terms, Rat.neg rhs) :: !rows
      | Model.Eq ->
          rows := (terms, rhs) :: (neg_terms, Rat.neg rhs) :: !rows);
  Array.iteri (fun v _ -> round_int v) bounds;
  let pass () =
    List.iter
      (fun (terms, rhs) ->
        (* Row infeasibility: even the minimum activity exceeds rhs. *)
        (match activity bounds terms ~extreme:`Min with
        | Some mn when Rat.( > ) mn rhs -> infeasible := true
        | _ -> ());
        (* Per-variable tightening: a_j x_j <= rhs - min_activity(rest). *)
        List.iter
          (fun (v, c) ->
            if Rat.sign c <> 0 then begin
              let rest = List.filter (fun (v', _) -> v' <> v) terms in
              match activity bounds rest ~extreme:`Min with
              | None -> ()
              | Some mn ->
                  let slack = Rat.sub rhs mn in
                  let limit = Rat.div slack c in
                  if Rat.sign c > 0 then tighten_ub v limit else tighten_lb v limit
            end)
          terms)
      !rows;
    (* Empty domains. *)
    Array.iter
      (fun (lb, ub) ->
        match ub with Some u when Rat.( < ) u lb -> infeasible := true | _ -> ())
      bounds
  in
  let passes = ref 0 in
  while !changed && (not !infeasible) && !passes < max_passes do
    changed := false;
    incr passes;
    pass ()
  done;
  if !infeasible then Proven_infeasible else Tightened bounds
