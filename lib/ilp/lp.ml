type status = Optimal | Infeasible | Unbounded

type result = { status : status; objective : Rat.t; values : Rat.t array }

type node = {
  tab : Simplex.t;
  bounds : (Rat.t * Rat.t option) array;
  model : Model.t;
}

(* Compile the model's constraints and objective to Simplex inputs.
   Bounds are NOT lowered here — the bounded-variable simplex takes
   them natively, so the tableau stays at one row per constraint. *)
let build_inputs model =
  let nv = Model.num_vars model in
  let rows = ref [] in
  Model.iter_constraints model (fun ~name:_ e sense rhs ->
      let coeffs = Array.make nv Rat.zero in
      Lin_expr.fold (fun v c () -> coeffs.(v) <- c) e ();
      rows :=
        { Simplex.coeffs; sense; rhs = Rat.sub rhs (Lin_expr.constant e) }
        :: !rows);
  let dir, obj_expr = Model.objective model in
  let c = Array.make nv Rat.zero in
  Lin_expr.fold (fun v cf () -> c.(v) <- cf) obj_expr ();
  let c =
    match dir with Model.Minimize -> c | Model.Maximize -> Array.map Rat.neg c
  in
  (c, List.rev !rows)

let result_of_tab model tab st =
  match st with
  | Simplex.Infeasible ->
      { status = Infeasible; objective = Rat.zero;
        values = Array.make (Model.num_vars model) Rat.zero }
  | Simplex.Unbounded ->
      { status = Unbounded; objective = Rat.zero; values = Simplex.solution tab }
  | Simplex.Optimal ->
      let values = Simplex.solution tab in
      let _, obj_expr = Model.objective model in
      (* Evaluating the model's own objective keeps the reported value
         in the model's direction and includes its constant term. *)
      let objective = Lin_expr.eval (fun v -> values.(v)) obj_expr in
      { status = Optimal; objective; values }

let root ?bounds model =
  let nv = Model.num_vars model in
  let bounds =
    match bounds with
    | Some b ->
        if Array.length b <> nv then invalid_arg "Lp.solve: bounds arity";
        Array.copy b
    | None -> Array.init nv (fun v -> Model.var_bounds model v)
  in
  let c, rows = build_inputs model in
  let tab = Simplex.create ~c ~rows ~bounds in
  let st = Simplex.solve_primal tab in
  ({ tab; bounds; model }, result_of_tab model tab st)

let bounds_equal (pl, pu) (l, u) =
  Rat.( = ) pl l
  &&
  match (pu, u) with
  | None, None -> true
  | Some a, Some b -> Rat.( = ) a b
  | _ -> false

let rebound parent ~bounds =
  let nv = Array.length parent.bounds in
  if Array.length bounds <> nv then invalid_arg "Lp.rebound: bounds arity";
  let tab = Simplex.copy parent.tab in
  for v = 0 to nv - 1 do
    if not (bounds_equal parent.bounds.(v) bounds.(v)) then
      Simplex.set_bound tab v bounds.(v)
  done;
  match Simplex.reoptimize tab with
  | st ->
      ( { tab; bounds = Array.copy bounds; model = parent.model },
        result_of_tab parent.model tab st )
  | exception Simplex.Stalled ->
      (* The warm start was unusable; a cold solve is always correct. *)
      root ~bounds parent.model

let node_bounds node = node.bounds

let solve ?bounds model =
  let _, r = root ?bounds model in
  r
