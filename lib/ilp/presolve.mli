(** Presolve: bound tightening before branch & bound.

    Classic activity-based propagation: for each row Σ aᵢxᵢ {≤,≥,=} b and
    each variable, the row's extreme activity over the other variables
    implies a bound on this one.  Integer variables additionally get
    their bounds rounded inward.  Iterated to a fixpoint (bounded pass
    count).  Detecting an empty domain proves infeasibility without
    touching the simplex. *)

type result =
  | Tightened of (Rat.t * Rat.t option) array
      (** Per-variable (lower, upper) bounds, at least as tight as the
          model's own. *)
  | Proven_infeasible

val run :
  ?max_passes:int -> ?bounds:(Rat.t * Rat.t option) array -> Model.t -> result
(** [max_passes] defaults to 10.  [bounds] overrides the model's own
    variable bounds as the starting point — {!Branch_bound} uses this to
    propagate a freshly branched bound through each node's subproblem.
    The input array is not mutated. *)
