(** Exact bounded-variable two-phase primal simplex on dense rational
    tableaus, with a dual-simplex re-optimizer for warm starts.

    Solves: minimize [c . x] subject to the given rows and
    [lo <= x <= up].  Variable bounds are handled natively in the ratio
    test (nonbasic-at-lower / nonbasic-at-upper states plus bound
    flips), so a finite upper bound costs nothing in tableau size.
    Bland's rule guarantees termination; exact {!Rat} arithmetic makes
    optimality and feasibility verdicts certain, which {!Branch_bound}
    relies on when testing integrality. *)

type row = { coeffs : Rat.t array; sense : Model.sense; rhs : Rat.t }

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : Rat.t;      (** Meaningful only when [status = Optimal]. *)
  solution : Rat.t array; (** Length = number of structural variables. *)
}

val solve : c:Rat.t array -> rows:row list -> result
(** One-shot solve over [x >= 0] (all bounds [(0, None)]).  All
    [coeffs] arrays must have the same length as [c].
    @raise Invalid_argument on dimension mismatch. *)

(** {1 Warm-startable tableaus}

    The stateful API below is what {!Lp} and {!Branch_bound} build on:
    solve a root tableau once with {!solve_primal}, then for each child
    node {!copy} it, tighten bounds with {!set_bound}, and
    {!reoptimize} with dual-simplex cleanup pivots. *)

type t

exception Stalled
(** Raised by {!reoptimize} when the warm start is not usable (the
    tableau is not dual feasible, or an internal pivot budget is
    exhausted).  Callers should fall back to a cold {!create} +
    {!solve_primal}; correctness is never compromised. *)

val create :
  c:Rat.t array ->
  rows:row list ->
  bounds:(Rat.t * Rat.t option) array ->
  t
(** Build a tableau for minimize [c . x] s.t. [rows],
    [fst bounds.(j) <= x_j <= snd bounds.(j)] ([None] = unbounded
    above).  [bounds] must have the same length as [c].
    @raise Invalid_argument on dimension mismatch. *)

val solve_primal : t -> status
(** Two-phase primal solve from scratch.  On [Optimal] the tableau is
    left in a state suitable for {!copy} / {!set_bound} /
    {!reoptimize}. *)

val copy : t -> t
(** Deep copy; the original is not affected by pivots on the copy. *)

val set_bound : t -> int -> Rat.t * Rat.t option -> unit
(** [set_bound t j (lo, up)] replaces variable [j]'s bounds.  A
    nonbasic [j] is slid onto the new bound (updating dependent basic
    values); a basic [j] may be left violating its bounds, which the
    next {!reoptimize} repairs.
    @raise Invalid_argument if [j] is not a structural variable. *)

val reoptimize : t -> status
(** Dual-simplex re-optimization after bound changes.  Requires a dual
    feasible tableau — i.e. a copy of an [Optimal] one whose bounds
    were only changed through {!set_bound}.  Never returns [Unbounded]
    (shrinking a feasible region cannot unbound the objective).
    @raise Stalled when the warm start is unusable; cold-solve instead. *)

val objective_value : t -> Rat.t
(** [c . x] at the tableau's current point. *)

val solution : t -> Rat.t array
(** Current values of the structural variables (length = [Array.length c]). *)
