type status = Optimal | Infeasible | Unbounded

let c_explored = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.nodes"
let c_pruned = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.pruned"

let c_infeasible =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.infeasible_nodes"

let c_incumbents =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.incumbents"

type outcome = {
  status : status;
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;
}

exception Node_limit_exceeded

(* Depth-first branch and bound.  Branching replaces a variable's bounds,
   expressed as override arrays handed to Lp.solve, so the model itself is
   never mutated. *)
let solve ?(node_limit = 200_000) model =
  let nv = Model.num_vars model in
  let dir, _ = Model.objective model in
  (* [better a b]: is objective [a] strictly better than [b]? *)
  let better a b =
    match dir with
    | Model.Minimize -> Rat.( < ) a b
    | Model.Maximize -> Rat.( > ) a b
  in
  let int_vars =
    List.filter
      (fun v ->
        match Model.var_type model v with
        | Model.Integer | Model.Binary -> true
        | Model.Continuous -> false)
      (List.init nv Fun.id)
  in
  let incumbent = ref None in
  let nodes = ref 0 in
  let unbounded = ref false in
  let presolved = Presolve.run model in
  let rec explore bounds =
    incr nodes;
    Clara_obs.Metrics.incr c_explored;
    if !nodes > node_limit then raise Node_limit_exceeded;
    match Lp.solve ~bounds model with
    | { Lp.status = Infeasible; _ } -> Clara_obs.Metrics.incr c_infeasible
    | { Lp.status = Unbounded; _ } ->
        (* The relaxation being unbounded does not by itself prove the ILP
           unbounded, but for the bounded models Clara emits this only
           happens at the root; report it. *)
        unbounded := true
    | { Lp.status = Optimal; objective; values } ->
        let dominated =
          match !incumbent with
          | None -> false
          | Some (inc_obj, _) -> not (better objective inc_obj)
        in
        if dominated then Clara_obs.Metrics.incr c_pruned
        else begin
          let fractional =
            List.find_opt (fun v -> not (Rat.is_integer values.(v))) int_vars
          in
          match fractional with
          | None ->
              Clara_obs.Metrics.incr c_incumbents;
              incumbent := Some (objective, values)
          | Some v ->
              let x = values.(v) in
              let lb, ub = bounds.(v) in
              let down = Array.copy bounds in
              down.(v) <- (lb, Some (Rat.of_bigint (Rat.floor x)));
              let up = Array.copy bounds in
              up.(v) <- (Rat.of_bigint (Rat.ceil x), ub);
              (* Explore the branch nearest the relaxation value first. *)
              if Rat.( < ) (Rat.frac x) (Rat.of_ints 1 2) then begin
                explore down;
                explore up
              end
              else begin
                explore up;
                explore down
              end
        end
  in
  (match presolved with
  | Presolve.Proven_infeasible -> ()
  | Presolve.Tightened base_bounds -> explore base_bounds);
  match (!incumbent, !unbounded) with
  | Some (objective, values), _ ->
      { status = Optimal; objective; values; nodes = !nodes }
  | None, true ->
      { status = Unbounded; objective = Rat.zero; values = Array.make nv Rat.zero; nodes = !nodes }
  | None, false ->
      { status = Infeasible; objective = Rat.zero; values = Array.make nv Rat.zero; nodes = !nodes }
