type status = Optimal | Infeasible | Unbounded | Node_limit

let c_explored = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.nodes"
let c_pruned = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.pruned"

let c_infeasible =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.infeasible_nodes"

let c_incumbents =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.incumbents"

let c_best_bound =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.best_bound_prunes"

let c_cutoff =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.bb.cutoff_prunes"

type outcome = {
  status : status;
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;
  incumbent : bool;
  gap : Rat.t option;
}

let rat_abs x = if Rat.sign x < 0 then Rat.neg x else x

(* Depth-first branch and bound, warm-started: each child re-optimizes a
   copy of its parent's final tableau (one variable's bounds changed)
   with dual-simplex pivots instead of a phase-1 cold start.  Branching
   is expressed as bound-override arrays, so the model itself is never
   mutated. *)
let solve ?(node_limit = 200_000) ?initial_bound model =
  let nv = Model.num_vars model in
  let dir, obj_expr = Model.objective model in
  (* [better a b]: is objective [a] strictly better than [b]? *)
  let better a b =
    match dir with
    | Model.Minimize -> Rat.( < ) a b
    | Model.Maximize -> Rat.( > ) a b
  in
  (* An externally supplied inclusive bound on the optimum (e.g. the
     static cost interval's ceiling): any subtree whose relaxation is
     strictly worse cannot contain an optimal point.  Strict, because a
     solution exactly at the bound must survive. *)
  let cutoff_prunes pb =
    match initial_bound with
    | Some ib -> better ib pb
    | None -> false
  in
  let int_vars =
    List.filter
      (fun v ->
        match Model.var_type model v with
        | Model.Integer | Model.Binary -> true
        | Model.Continuous -> false)
      (List.init nv Fun.id)
  in
  (* When every variable is integer and every objective coefficient is
     an integer, the objective is integral at any feasible point, so a
     subtree's fractional relaxation bound rounds to the nearest integer
     in the objective direction — strictly stronger pruning. *)
  let integral_obj =
    List.length int_vars = nv
    && Rat.is_integer (Lin_expr.constant obj_expr)
    && Lin_expr.fold (fun _ c acc -> acc && Rat.is_integer c) obj_expr true
  in
  let round_bound pb =
    if not integral_obj then pb
    else
      match dir with
      | Model.Minimize -> Rat.of_bigint (Rat.ceil pb)
      | Model.Maximize -> Rat.of_bigint (Rat.floor pb)
  in
  let incumbent = ref None in
  let nodes = ref 0 in
  let unbounded = ref false in
  let node_limited = ref false in
  (* Pending subtrees: (parent LP node, child bounds, parent's relaxation
     objective — a valid bound on anything below).  LIFO, so the branch
     pushed last pops first. *)
  let stack = ref [] in
  (* Relaxation bounds of the subtrees left unexplored at cutoff, for
     the optimality gap. *)
  let open_bounds = ref [] in
  let count_node () =
    incr nodes;
    Clara_obs.Metrics.incr c_explored
  in
  let process lp_node result =
    match result with
    | { Lp.status = Lp.Infeasible; _ } -> Clara_obs.Metrics.incr c_infeasible
    | { Lp.status = Lp.Unbounded; _ } ->
        (* The relaxation being unbounded does not by itself prove the ILP
           unbounded, but for the bounded models Clara emits this only
           happens at the root; report it. *)
        unbounded := true
    | { Lp.status = Lp.Optimal; objective; values } -> (
        let dominated =
          match !incumbent with
          | None -> false
          | Some (inc_obj, _) -> not (better objective inc_obj)
        in
        if dominated then Clara_obs.Metrics.incr c_pruned
        else if cutoff_prunes (round_bound objective) then
          Clara_obs.Metrics.incr c_cutoff
        else
          match
            List.find_opt (fun v -> not (Rat.is_integer values.(v))) int_vars
          with
          | None ->
              Clara_obs.Metrics.incr c_incumbents;
              incumbent := Some (objective, values)
          | Some v ->
              let bounds = Lp.node_bounds lp_node in
              let x = values.(v) in
              let lb, ub = bounds.(v) in
              let down = Array.copy bounds in
              down.(v) <- (lb, Some (Rat.of_bigint (Rat.floor x)));
              let up = Array.copy bounds in
              up.(v) <- (Rat.of_bigint (Rat.ceil x), ub);
              (* Explore the branch nearest the relaxation value first. *)
              let near, far =
                if Rat.( < ) (Rat.frac x) (Rat.of_ints 1 2) then (down, up)
                else (up, down)
              in
              let bound = Some (round_bound objective) in
              stack := (lp_node, near, bound) :: (lp_node, far, bound) :: !stack)
  in
  let root_presolve = Presolve.run model in
  (match root_presolve with
  | Presolve.Proven_infeasible -> ()
  | Presolve.Tightened base_bounds ->
      count_node ();
      let root_node, root_res = Lp.root ~bounds:base_bounds model in
      process root_node root_res;
      let rec drain () =
        match !stack with
        | [] -> ()
        | (parent, bounds, pbound) :: rest ->
            if !nodes >= node_limit then begin
              (* Out of budget: everything still stacked stays open. *)
              node_limited := true;
              open_bounds := List.map (fun (_, _, pb) -> pb) !stack;
              stack := []
            end
            else begin
              stack := rest;
              count_node ();
              (* Best-bound pruning: the parent's relaxation objective
                 bounds everything in this subtree, so an incumbent at
                 least as good closes it without touching the simplex. *)
              let prune =
                match (!incumbent, pbound) with
                | Some (inc_obj, _), Some pb -> not (better pb inc_obj)
                | _ -> false
              in
              let cut =
                (not prune)
                && match pbound with Some pb -> cutoff_prunes pb | None -> false
              in
              if prune then Clara_obs.Metrics.incr c_best_bound
              else if cut then Clara_obs.Metrics.incr c_cutoff
              else begin
                (* Propagate the branched bound through the rows before
                   solving; a few passes catch the common implied-bound
                   chains without fixpoint cost. *)
                match Presolve.run ~max_passes:3 ~bounds model with
                | Presolve.Proven_infeasible ->
                    Clara_obs.Metrics.incr c_infeasible
                | Presolve.Tightened bounds' ->
                    let node, res = Lp.rebound parent ~bounds:bounds' in
                    process node res
              end;
              drain ()
            end
      in
      drain ());
  if !node_limited then
    match !incumbent with
    | Some (objective, values) ->
        (* Gap between the incumbent and the most promising open
           subtree; zero when no open subtree can beat the incumbent. *)
        let best_open =
          List.fold_left
            (fun acc pb ->
              match (acc, pb) with
              | None, Some b -> Some b
              | Some a, Some b -> if better b a then Some b else Some a
              | acc, None -> acc)
            None !open_bounds
        in
        let gap =
          match best_open with
          | Some b when better b objective -> Some (rat_abs (Rat.sub objective b))
          | Some _ | None -> Some Rat.zero
        in
        { status = Node_limit; objective; values; nodes = !nodes;
          incumbent = true; gap }
    | None ->
        { status = Node_limit; objective = Rat.zero;
          values = Array.make nv Rat.zero; nodes = !nodes; incumbent = false;
          gap = None }
  else
    match (!incumbent, !unbounded) with
    | Some (objective, values), _ ->
        { status = Optimal; objective; values; nodes = !nodes;
          incumbent = true; gap = None }
    | None, true ->
        { status = Unbounded; objective = Rat.zero;
          values = Array.make nv Rat.zero; nodes = !nodes; incumbent = false;
          gap = None }
    | None, false ->
        { status = Infeasible; objective = Rat.zero;
          values = Array.make nv Rat.zero; nodes = !nodes; incumbent = false;
          gap = None }
