(** LP relaxation of a {!Model} over the bounded-variable {!Simplex}.

    Variable bounds are passed to the simplex natively (no shifting, no
    upper-bound rows); the objective direction is compiled to the
    minimizing form and reported values are translated back. *)

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : Rat.t;     (** In the model's own direction. *)
  values : Rat.t array;  (** One value per model variable. *)
}

val solve : ?bounds:(Rat.t * Rat.t option) array -> Model.t -> result
(** [solve ?bounds m] solves the continuous relaxation (integrality is
    ignored).  [bounds] overrides the per-variable bounds. *)

(** {1 Warm-started nodes}

    {!Branch_bound} solves the root relaxation once, then derives each
    child from its parent's final tableau: only the branched variable's
    bounds change, so a dual-simplex {!rebound} needs a handful of
    cleanup pivots instead of a phase-1 cold start. *)

type node
(** An immutable-by-convention solved relaxation: the final simplex
    tableau plus the bounds it was solved under. *)

val root : ?bounds:(Rat.t * Rat.t option) array -> Model.t -> node * result
(** Cold-solve the relaxation and keep the tableau for warm starts. *)

val rebound : node -> bounds:(Rat.t * Rat.t option) array -> node * result
(** [rebound parent ~bounds] re-optimizes a copy of [parent]'s tableau
    under [bounds].  Intended for bounds that only {e tighten} the
    parent's (as branching and presolve do) — that keeps the tableau
    dual feasible.  Falls back to a cold solve automatically when the
    warm start is unusable, so the result is always correct. *)

val node_bounds : node -> (Rat.t * Rat.t option) array
(** The bounds the node was solved under (do not mutate). *)
