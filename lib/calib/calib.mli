(** Predict-vs-simulate calibration: how much should the model be
    trusted, per NF, per NIC, per latency component?

    A calibration run executes the static predictor and the event
    simulator on the same NF × NIC × workload, aligns their latency
    decompositions on a canonical five-component basis
    (queue / compute / accel-wait / mem / wire) and appends one
    {!record} per case to an on-disk JSONL {e ledger}.  Because both
    decompositions tile their own totals exactly (the simulator's
    attribution spans tile [arrival, retire]; the predictor's components
    sum to its prediction), the per-component signed errors sum to the
    total mean gap cycle-for-cycle — so "the predictor is 9% optimistic
    here, and 7 of those 9 points are missing queueing" is a statement
    the ledger can back.

    Component alignment: the predictor models no queueing and no
    accelerator contention, so its [queue] and [accel_wait] are zero and
    its accelerator {e service} time folds into [compute] — mirroring
    the simulator's attribution, where [Accel_use] also counts as
    compute and [Accel_wait] is pure serialization.

    [clara calibrate] appends records; [clara report] renders per-NF /
    per-NIC error tables, worst-component attribution, and drift
    detection against prior entries for the same (NF, NIC) group. *)

type components = {
  c_queue : float;
  c_compute : float;     (** Core compute + accelerator service. *)
  c_accel_wait : float;
  c_mem : float;
  c_wire : float;
}

val csum : components -> float
val zero_components : components

type provenance = {
  timestamp : string;      (** UTC, ISO-8601. *)
  git_commit : string;     (** ["unknown"] outside a git checkout. *)
  ocaml_version : string;
  host : string;
  options_hash : string;   (** Hash of the case parameters. *)
}

type record = {
  nf : string;
  nic : string;
  workload : string;       (** Compact workload descriptor. *)
  seed : int;
  packets : int;           (** Simulated (non-dropped) packets attributed. *)
  pred_mean : float;
  pred_p50 : float;
  pred_p99 : float;
  sim_mean : float;
  sim_p50 : float;
  sim_p99 : float;
  gap_mean_pct : float;    (** 100·(pred−sim)/sim. *)
  gap_p50_pct : float;
  gap_p99_pct : float;
  pred_comp : components;  (** Sums to [pred_mean]. *)
  sim_comp : components;   (** Sums to [sim_mean]. *)
  err_comp : components;   (** pred − sim; sums to [pred_mean − sim_mean]. *)
  prov : provenance;
}

val record_to_json : record -> Clara_util.Json.t
val record_of_json : Clara_util.Json.t -> (record, string) result

val current_provenance : options_hash:string -> provenance
(** Best-effort environment capture; never fails. *)

(** {2 Running a case} *)

type case = {
  case_nf : string;    (** Corpus NF name; a file path reduces to its
                           basename and '_' normalizes to '-', so
                           [examples/nf_sources/syn_proxy.clara] resolves
                           to the [syn-proxy] corpus entry. *)
  case_nic : string;
  case_packets : int;
  case_payload : int;
  case_flows : int;
  case_rate : float;
  case_tcp : float;
  case_seed : int;
}

val default_case : nf:string -> nic:string -> case
(** 4000 packets, 300-byte payload, 2000 flows, 60 kpps, 0.8 TCP,
    seed 42. *)

val run_case : case -> (record, string) result
(** Analyze + predict + simulate-with-tracing one case.  Errors cover
    unknown NFs/NICs and analysis/mapping failures (e.g. an NF the
    target cannot host) — callers typically skip those cases. *)

(** {2 The ledger} *)

val append : path:string -> record -> unit
(** Append one compact-JSON line; creates the file if needed. *)

val load : path:string -> (record list, string) result
(** All records in append order.  A missing file is an error; a
    malformed line is an error naming the line. *)

(** {2 Reporting} *)

type drift = {
  dr_nf : string;
  dr_nic : string;
  dr_metric : string;     (** ["mean"] or ["p50"]. *)
  dr_prev_pct : float;
  dr_latest_pct : float;
}

type group = {
  g_nf : string;
  g_nic : string;
  g_entries : int;
  g_latest : record;
  g_worst : string;       (** Component with the largest |error| in the
                              latest record. *)
}

type report = {
  groups : group list;    (** Sorted by (nf, nic). *)
  drifts : drift list;
  threshold_pp : float;
}

val build_report : ?drift_threshold:float -> record list -> report
(** Groups records by (nf, nic) in append order.  For a group with ≥ 2
    entries, the latest drifts on a metric when its absolute gap
    exceeds the previous entry's by more than [drift_threshold]
    percentage points (default 5.0). *)

val report_to_json : report -> Clara_util.Json.t
val pp_report : Format.formatter -> report -> unit
