module J = Clara_util.Json
module W = Clara_workload
module L = Clara_lnic
module Nsim = Clara_nicsim
module Lat = Clara_predict.Latency

type components = {
  c_queue : float;
  c_compute : float;
  c_accel_wait : float;
  c_mem : float;
  c_wire : float;
}

let csum c = c.c_queue +. c.c_compute +. c.c_accel_wait +. c.c_mem +. c.c_wire

let zero_components =
  { c_queue = 0.; c_compute = 0.; c_accel_wait = 0.; c_mem = 0.; c_wire = 0. }

let component_names = [ "queue"; "compute"; "accel_wait"; "mem"; "wire" ]
let component_values c = [ c.c_queue; c.c_compute; c.c_accel_wait; c.c_mem; c.c_wire ]

let components_to_json c =
  J.Obj (List.map2 (fun n v -> (n, J.Float v)) component_names (component_values c))

type provenance = {
  timestamp : string;
  git_commit : string;
  ocaml_version : string;
  host : string;
  options_hash : string;
}

type record = {
  nf : string;
  nic : string;
  workload : string;
  seed : int;
  packets : int;
  pred_mean : float;
  pred_p50 : float;
  pred_p99 : float;
  sim_mean : float;
  sim_p50 : float;
  sim_p99 : float;
  gap_mean_pct : float;
  gap_p50_pct : float;
  gap_p99_pct : float;
  pred_comp : components;
  sim_comp : components;
  err_comp : components;
  prov : provenance;
}

let record_to_json r =
  J.Obj
    [
      ("schema", J.Int 1);
      ("nf", J.String r.nf);
      ("nic", J.String r.nic);
      ("workload", J.String r.workload);
      ("seed", J.Int r.seed);
      ("packets", J.Int r.packets);
      ("pred_mean", J.Float r.pred_mean);
      ("pred_p50", J.Float r.pred_p50);
      ("pred_p99", J.Float r.pred_p99);
      ("sim_mean", J.Float r.sim_mean);
      ("sim_p50", J.Float r.sim_p50);
      ("sim_p99", J.Float r.sim_p99);
      ("gap_mean_pct", J.Float r.gap_mean_pct);
      ("gap_p50_pct", J.Float r.gap_p50_pct);
      ("gap_p99_pct", J.Float r.gap_p99_pct);
      ("pred_comp", components_to_json r.pred_comp);
      ("sim_comp", components_to_json r.sim_comp);
      ("err_comp", components_to_json r.err_comp);
      ( "provenance",
        J.Obj
          [
            ("timestamp", J.String r.prov.timestamp);
            ("git_commit", J.String r.prov.git_commit);
            ("ocaml_version", J.String r.prov.ocaml_version);
            ("host", J.String r.prov.host);
            ("options_hash", J.String r.prov.options_hash);
          ] );
    ]

(* --- JSON decoding ------------------------------------------------- *)

let field j k = J.member k j

let str j k =
  match Option.bind (field j k) J.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field '%s'" k)

let num j k =
  match Option.bind (field j k) J.to_float_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field '%s'" k)

let int_f j k =
  match Option.bind (field j k) J.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field '%s'" k)

let ( let* ) = Result.bind

let components_of_json j =
  let* q = num j "queue" in
  let* c = num j "compute" in
  let* a = num j "accel_wait" in
  let* m = num j "mem" in
  let* w = num j "wire" in
  Ok { c_queue = q; c_compute = c; c_accel_wait = a; c_mem = m; c_wire = w }

let sub j k =
  match field j k with
  | Some o -> Ok o
  | None -> Error (Printf.sprintf "missing object field '%s'" k)

let record_of_json j =
  let* nf = str j "nf" in
  let* nic = str j "nic" in
  let* workload = str j "workload" in
  let* seed = int_f j "seed" in
  let* packets = int_f j "packets" in
  let* pred_mean = num j "pred_mean" in
  let* pred_p50 = num j "pred_p50" in
  let* pred_p99 = num j "pred_p99" in
  let* sim_mean = num j "sim_mean" in
  let* sim_p50 = num j "sim_p50" in
  let* sim_p99 = num j "sim_p99" in
  let* gap_mean_pct = num j "gap_mean_pct" in
  let* gap_p50_pct = num j "gap_p50_pct" in
  let* gap_p99_pct = num j "gap_p99_pct" in
  let* pc = sub j "pred_comp" in
  let* pred_comp = components_of_json pc in
  let* sc = sub j "sim_comp" in
  let* sim_comp = components_of_json sc in
  let* ec = sub j "err_comp" in
  let* err_comp = components_of_json ec in
  let* pv = sub j "provenance" in
  let* timestamp = str pv "timestamp" in
  let* git_commit = str pv "git_commit" in
  let* ocaml_version = str pv "ocaml_version" in
  let* host = str pv "host" in
  let* options_hash = str pv "options_hash" in
  Ok
    {
      nf;
      nic;
      workload;
      seed;
      packets;
      pred_mean;
      pred_p50;
      pred_p99;
      sim_mean;
      sim_p50;
      sim_p99;
      gap_mean_pct;
      gap_p50_pct;
      gap_p99_pct;
      pred_comp;
      sim_comp;
      err_comp;
      prov = { timestamp; git_commit; ocaml_version; host; options_hash };
    }

(* --- provenance ----------------------------------------------------- *)

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      let line = String.trim line in
      if status = Unix.WEXITED 0 && line <> "" then line else "unknown"

let utc_now () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let current_provenance ~options_hash =
  {
    timestamp = utc_now ();
    git_commit = git_commit ();
    ocaml_version = Sys.ocaml_version;
    host = (try Unix.gethostname () with _ -> "unknown");
    options_hash;
  }

(* --- running a case -------------------------------------------------- *)

type case = {
  case_nf : string;
  case_nic : string;
  case_packets : int;
  case_payload : int;
  case_flows : int;
  case_rate : float;
  case_tcp : float;
  case_seed : int;
}

let default_case ~nf ~nic =
  {
    case_nf = nf;
    case_nic = nic;
    case_packets = 4000;
    case_payload = 300;
    case_flows = 2000;
    case_rate = 60_000.;
    case_tcp = 0.8;
    case_seed = 42;
  }

(* Example files are named with underscores (syn_proxy.clara), the
   corpus with hyphens (syn-proxy); a path argument reduces to its
   basename so `clara calibrate examples/nf_sources/*.clara` works. *)
let normalize_nf name =
  String.map
    (function '_' -> '-' | c -> c)
    (Filename.remove_extension (Filename.basename name))

let workload_descr c =
  Printf.sprintf "p%d,n%d,f%d,r%.0f,tcp%.2f" c.case_payload c.case_packets
    c.case_flows c.case_rate c.case_tcp

let pct pred sim = if sim = 0. then Float.nan else 100. *. (pred -. sim) /. sim

let run_case_exn c =
  let name = normalize_nf c.case_nf in
  match Clara_nfs.Corpus.find name with
  | None ->
      Error
        (Printf.sprintf "unknown NF '%s' (try: %s)" name
           (String.concat " " Clara_nfs.Corpus.names))
  | Some entry -> (
      let* lnic = L.Targets.of_name c.case_nic in
      let profile =
        W.Profile.make
          ~payload:(W.Dist.Fixed c.case_payload)
          ~packets:c.case_packets ~flow_count:c.case_flows ~rate_pps:c.case_rate
          ~tcp_fraction:c.case_tcp ()
      in
      match
        Clara.analyze_for_profile lnic ~source:entry.Clara_nfs.Corpus.source ~profile
      with
      | Error e -> Error (Printf.sprintf "%s on %s: %s" name c.case_nic e)
      | Ok analysis ->
          let trace = W.Trace.synthesize ~seed:(Int64.of_int c.case_seed) profile in
          (* Predictor side: prediction + component decomposition on the
             same trace and RNG seed, so the totals match exactly. *)
          let pt = Lat.create lnic analysis.Clara.df analysis.Clara.mapping in
          let p = Lat.predict_trace pt trace in
          let att = Lat.attribute_trace pt trace in
          let pall =
            List.find (fun (r : Lat.att_row) -> r.Lat.at_type = "all") att.Lat.att_rows
          in
          (* No queueing / accelerator contention in the static model;
             accelerator service folds into compute to mirror the
             simulator's attribution basis. *)
          let pred_comp =
            {
              c_queue = 0.;
              c_compute = pall.Lat.at_compute +. pall.Lat.at_accel;
              c_accel_wait = 0.;
              c_mem = pall.Lat.at_mem;
              c_wire = pall.Lat.at_wire;
            }
          in
          (* Simulator side: run with a trace sink sized to keep every
             event, then attribute. *)
          let sink = Nsim.Trace.create ~limit:(max 65_536 (c.case_packets * 64)) () in
          let r = Nsim.Engine.run ~sink lnic entry.Clara_nfs.Corpus.ported trace in
          let rep = Nsim.Attribution.analyze sink in
          let sall =
            List.find_opt
              (fun (row : Nsim.Attribution.row) ->
                row.Nsim.Attribution.r_prog = 0 && row.Nsim.Attribution.r_type = "all")
              rep.Nsim.Attribution.rows
          in
          let* sall =
            match sall with
            | Some row -> Ok row
            | None -> Error (name ^ ": simulator attributed no packets")
          in
          let sim_comp =
            {
              c_queue = sall.Nsim.Attribution.r_queue;
              c_compute = sall.Nsim.Attribution.r_compute;
              c_accel_wait = sall.Nsim.Attribution.r_accel_wait;
              c_mem = sall.Nsim.Attribution.r_mem;
              c_wire = sall.Nsim.Attribution.r_wire;
            }
          in
          (* Use the attribution's own mean as the sim total so the
             signed component errors sum to the mean gap exactly. *)
          let sim_mean = sall.Nsim.Attribution.r_total in
          let summary = r.Nsim.Engine.summary in
          let err_comp =
            {
              c_queue = pred_comp.c_queue -. sim_comp.c_queue;
              c_compute = pred_comp.c_compute -. sim_comp.c_compute;
              c_accel_wait = pred_comp.c_accel_wait -. sim_comp.c_accel_wait;
              c_mem = pred_comp.c_mem -. sim_comp.c_mem;
              c_wire = pred_comp.c_wire -. sim_comp.c_wire;
            }
          in
          let sim_p50 = float_of_int summary.Nsim.Stats.p50_cycles in
          let sim_p99 = float_of_int summary.Nsim.Stats.p99_cycles in
          let options_hash =
            Printf.sprintf "%08x"
              (Hashtbl.hash (name, c.case_nic, workload_descr c, c.case_seed))
          in
          Ok
            {
              nf = name;
              nic = c.case_nic;
              workload = workload_descr c;
              seed = c.case_seed;
              packets = sall.Nsim.Attribution.r_count;
              pred_mean = p.Lat.mean_cycles;
              pred_p50 = p.Lat.p50_cycles;
              pred_p99 = p.Lat.p99_cycles;
              sim_mean;
              sim_p50;
              sim_p99;
              gap_mean_pct = pct p.Lat.mean_cycles sim_mean;
              gap_p50_pct = pct p.Lat.p50_cycles sim_p50;
              gap_p99_pct = pct p.Lat.p99_cycles sim_p99;
              pred_comp;
              sim_comp;
              err_comp;
              prov = current_provenance ~options_hash;
            })

(* The simulator raises on programs a device genuinely cannot execute
   (e.g. an accelerator op the target lacks); fold those into the same
   skippable-error channel as analysis failures. *)
let run_case c =
  try run_case_exn c with
  | Invalid_argument e | Failure e ->
      Error (Printf.sprintf "%s on %s: %s" (normalize_nf c.case_nf) c.case_nic e)

(* --- the ledger ------------------------------------------------------ *)

let append ~path r =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:false (record_to_json r));
      output_char oc '\n')

let load ~path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no ledger at %s" path)
  else begin
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' content in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
          if String.trim line = "" then go (i + 1) acc rest
          else
            let* j =
              Result.map_error
                (fun e -> Printf.sprintf "%s:%d: %s" path i e)
                (J.parse line)
            in
            let* r =
              Result.map_error
                (fun e -> Printf.sprintf "%s:%d: %s" path i e)
                (record_of_json j)
            in
            go (i + 1) (r :: acc) rest
    in
    go 1 [] lines
  end

(* --- reporting ------------------------------------------------------- *)

type drift = {
  dr_nf : string;
  dr_nic : string;
  dr_metric : string;
  dr_prev_pct : float;
  dr_latest_pct : float;
}

type group = {
  g_nf : string;
  g_nic : string;
  g_entries : int;
  g_latest : record;
  g_worst : string;
}

type report = { groups : group list; drifts : drift list; threshold_pp : float }

let worst_component r =
  let pairs = List.combine component_names (component_values r.err_comp) in
  fst
    (List.fold_left
       (fun (bn, bv) (n, v) ->
         if Float.abs v > Float.abs bv then (n, v) else (bn, bv))
       ("none", 0.) pairs)

let build_report ?(drift_threshold = 5.0) records =
  (* Group by (nf, nic), preserving append order within and across
     groups (first-seen order). *)
  let keys = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let k = (r.nf, r.nic) in
      if not (Hashtbl.mem tbl k) then begin
        keys := k :: !keys;
        Hashtbl.add tbl k []
      end;
      Hashtbl.replace tbl k (r :: Hashtbl.find tbl k))
    records;
  let groups_unsorted =
    List.rev_map
      (fun k ->
        let entries = List.rev (Hashtbl.find tbl k) in
        let latest = List.nth entries (List.length entries - 1) in
        let drifts =
          match List.rev entries with
          | latest :: prev :: _ ->
              let check metric latest_pct prev_pct acc =
                if
                  Float.is_nan latest_pct || Float.is_nan prev_pct
                  || Float.abs latest_pct <= Float.abs prev_pct +. drift_threshold
                then acc
                else
                  {
                    dr_nf = latest.nf;
                    dr_nic = latest.nic;
                    dr_metric = metric;
                    dr_prev_pct = prev_pct;
                    dr_latest_pct = latest_pct;
                  }
                  :: acc
              in
              []
              |> check "mean" latest.gap_mean_pct prev.gap_mean_pct
              |> check "p50" latest.gap_p50_pct prev.gap_p50_pct
              |> List.rev
          | _ -> []
        in
        ( {
            g_nf = fst k;
            g_nic = snd k;
            g_entries = List.length entries;
            g_latest = latest;
            g_worst = worst_component latest;
          },
          drifts ))
      !keys
  in
  let groups_unsorted = List.rev groups_unsorted in
  let groups =
    List.sort
      (fun (a, _) (b, _) -> compare (a.g_nf, a.g_nic) (b.g_nf, b.g_nic))
      groups_unsorted
  in
  {
    groups = List.map fst groups;
    drifts = List.concat_map snd groups_unsorted;
    threshold_pp = drift_threshold;
  }

let drift_to_json d =
  J.Obj
    [
      ("nf", J.String d.dr_nf);
      ("nic", J.String d.dr_nic);
      ("metric", J.String d.dr_metric);
      ("prev_gap_pct", J.Float d.dr_prev_pct);
      ("latest_gap_pct", J.Float d.dr_latest_pct);
    ]

let report_to_json rep =
  J.Obj
    [
      ("schema", J.Int 1);
      ("drift_threshold_pp", J.Float rep.threshold_pp);
      ( "groups",
        J.List
          (List.map
             (fun g ->
               J.Obj
                 [
                   ("nf", J.String g.g_nf);
                   ("nic", J.String g.g_nic);
                   ("entries", J.Int g.g_entries);
                   ("worst_component", J.String g.g_worst);
                   ("latest", record_to_json g.g_latest);
                 ])
             rep.groups) );
      ("drifts", J.List (List.map drift_to_json rep.drifts));
      ("drifting", J.Bool (rep.drifts <> []));
    ]

let pp_report fmt rep =
  Format.fprintf fmt "calibration report: %d nf x nic group%s@."
    (List.length rep.groups)
    (if List.length rep.groups = 1 then "" else "s");
  Format.fprintf fmt "  %-14s %-10s %7s %10s %9s %9s  %s@." "nf" "nic" "entries"
    "mean-gap%" "p50-gap%" "p99-gap%" "worst-component";
  List.iter
    (fun g ->
      let r = g.g_latest in
      Format.fprintf fmt "  %-14s %-10s %7d %+10.1f %+9.1f %+9.1f  %s (%+.0f cyc)@."
        g.g_nf g.g_nic g.g_entries r.gap_mean_pct r.gap_p50_pct r.gap_p99_pct g.g_worst
        (List.assoc g.g_worst
           (List.combine component_names (component_values r.err_comp))))
    rep.groups;
  if rep.drifts = [] then
    Format.fprintf fmt "drift: none (threshold %+.1f pp)@." rep.threshold_pp
  else
    List.iter
      (fun d ->
        Format.fprintf fmt
          "DRIFT: %s on %s %s gap grew %+.1f%% -> %+.1f%% (threshold %+.1f pp)@."
          d.dr_nf d.dr_nic d.dr_metric d.dr_prev_pct d.dr_latest_pct rep.threshold_pp)
      rep.drifts
