(* BlueField-class off-path DPU: a hardware eSwitch match-action engine
   terminates the wire, so cached flows never touch software; only
   flow-cache misses are upcalled over the internal fabric to the Arm
   core complex (charged via the fabric hub, see Graph.upcall_cycles).
   Latency structure follows the measured BlueField-2 numbers from
   "Demystifying Datapath Accelerator Enhanced Off-path SmartNIC":
   constant-time fast-path forwarding, a fixed upcall penalty to reach
   the cores, and payload-touching work paying an extra NOC/DMA transfer
   because the cores sit off the packet path. *)

let upcall_hub_cycles = 1000 (* eSwitch -> Arm upcall, ~0.4 us at 2.5 GHz *)

let params : Params.t =
  {
    pname = "bluefield-dpu-25g";
    core_op_cycles =
      Params.
        [ (Alu, 1.);
          (Mul, 3.);
          (Div, 10.);
          (Fp, 2.);
          (Move, 1.);
          (Branch, 1.);
          (Hash, 9.);
          (Load, 1.);
          (Store, 1.);
          (Atomic, 4.);
          (Call, 4.) ];
    fpu_emulation_factor = 1.; (* A72 cores have FPUs; factor unused *)
    core_vcalls =
      Params.
        [ (V_parse_header, Cost_fn.const 85.);
          (V_modify_header, Cost_fn.linear ~base:1. ~per_unit:2.);
          (V_checksum, Cost_fn.linear ~base:280. ~per_unit:0.28);
          (V_crypto, Cost_fn.linear ~base:240. ~per_unit:7.);
          (V_table_lookup, Cost_fn.logarithmic ~base:55. ~log2_coeff:3.);
          (V_lpm_lookup, Cost_fn.logarithmic ~base:600. ~log2_coeff:80.);
          (V_table_update, Cost_fn.logarithmic ~base:85. ~log2_coeff:3.);
          (* Payload bytes must cross the internal DMA fabric before the
             off-path cores can even look at them, so byte-touching work
             is far more expensive than its on-path SoC cousin. *)
          (V_payload_scan, Cost_fn.linear ~base:30000. ~per_unit:1800.);
          (V_meter, Cost_fn.const 38.);
          (V_flow_stats, Cost_fn.const 28.);
          (V_emit, Cost_fn.linear ~base:110. ~per_unit:0.05);
          (V_drop, Cost_fn.const 8.) ];
    accel_vcalls =
      [ (* The eSwitch prices only match-action-shaped work; anything it
           does not advertise (table updates, checksums, payload work)
           demotes the touching state to the Arm slow path. *)
        ( Unit_.Eswitch,
          Params.
            [ (V_parse_header, Cost_fn.const 18.);
              (V_modify_header, Cost_fn.linear ~base:10. ~per_unit:0.5);
              (V_table_lookup, Cost_fn.const 40.);
              (V_lpm_lookup, Cost_fn.const 55.);
              (V_meter, Cost_fn.const 14.);
              (V_flow_stats, Cost_fn.const 14.);
              (V_drop, Cost_fn.const 4.) ] );
        ( Unit_.Checksum,
          Params.[ (V_checksum, Cost_fn.linear ~base:80. ~per_unit:0.20) ] );
        ( Unit_.Crypto,
          Params.[ (V_crypto, Cost_fn.linear ~base:90. ~per_unit:0.7) ] ) ];
    accel_sram_bytes = [ (Unit_.Eswitch, 2 * 1024 * 1024) ];
    packet_ctm_threshold = 2048;
    wire_ingress = Cost_fn.linear ~base:1400. ~per_unit:1.0;
    wire_egress = Cost_fn.linear ~base:1400. ~per_unit:1.0;
  }

let create ?(cores = 8) () =
  if cores < 1 then invalid_arg "Bluefield.create: need at least one core";
  let units = ref [] and unit_id = ref 0 in
  let add_unit name kind stage =
    let u = { Unit_.id = !unit_id; name; kind; island = None; freq_mhz = 2500; stage } in
    incr unit_id;
    units := u :: !units;
    u
  in
  (* The eSwitch fronts the wire physically, but packets bounce between
     it and the Arm complex (miss upcall, then egress), so it shares the
     cores' pipeline stage like Netronome's flow-cache engine does. *)
  let eswitch = add_unit "eswitch" (Unit_.Accelerator Unit_.Eswitch) 1 in
  let arm_cores =
    List.init cores (fun i ->
        add_unit
          (Printf.sprintf "arm%d" i)
          (Unit_.General_core { threads = 2; has_fpu = true })
          1)
  in
  let csum_accel = add_unit "doca_csum" (Unit_.Accelerator Unit_.Checksum) 1 in
  let crypto_accel = add_unit "doca_crypto" (Unit_.Accelerator Unit_.Crypto) 1 in
  let memories =
    [| { Memory.id = 0; name = "l1"; level = Memory.Local; size_bytes = 64 * 1024;
         read_cycles = 4; write_cycles = 4; atomic_cycles = 8; cache = None;
         island = None };
       { Memory.id = 1; name = "l2"; level = Memory.Cluster;
         size_bytes = 1024 * 1024; read_cycles = 18; write_cycles = 18;
         atomic_cycles = 28; cache = None; island = None };
       (* The eSwitch's flow-cache tier: fast SRAM holding the resident
          match-action entries; its capacity bounds the fast path. *)
       { Memory.id = 2; name = "flow_cache"; level = Memory.Internal;
         size_bytes = 2 * 1024 * 1024; read_cycles = 12; write_cycles = 12;
         atomic_cycles = 20; cache = None; island = None };
       { Memory.id = 3; name = "dram"; level = Memory.External;
         size_bytes = 16 * 1024 * 1024 * 1024; read_cycles = 170;
         write_cycles = 170; atomic_cycles = 210;
         cache = Some { Memory.cache_bytes = 8 * 1024 * 1024; hit_cycles = 40 };
         island = None } |]
  in
  let hubs =
    [| { Hub.id = 0; name = "ingress"; kind = `Ingress; queue_capacity = 2048;
         discipline = Hub.Fifo; per_packet_cycles = 24 };
       { Hub.id = 1; name = "egress"; kind = `Egress; queue_capacity = 2048;
         discipline = Hub.Fifo; per_packet_cycles = 24 };
       (* The internal fabric doubles as the upcall queue: a flow-cache
          miss pays this hub's per-packet cost to reach the Arm cores. *)
       { Hub.id = 2; name = "upcall_fabric"; kind = `Fabric;
         queue_capacity = 512; discipline = Hub.Fifo;
         per_packet_cycles = upcall_hub_cycles };
       { Hub.id = 3; name = "pcie_dma"; kind = `Host_dma;
         queue_capacity = 256; discipline = Hub.Fifo;
         per_packet_cycles = 2200 (* ~0.9 us host round-trip *) } |]
  in
  let links = ref [] in
  let link kind weight = links := { Link.kind; weight_cycles = weight } :: !links in
  List.iter
    (fun (c : Unit_.t) ->
      Array.iter (fun (m : Memory.t) -> link (Link.Access (c.id, m.id)) 0) memories)
    arm_cores;
  link (Link.Access (eswitch.Unit_.id, 2)) 0;
  link (Link.Access (eswitch.Unit_.id, 3)) 0;
  List.iter
    (fun (a : Unit_.t) ->
      link (Link.Access (a.id, 1)) 0;
      link (Link.Access (a.id, 3)) 0)
    [ csum_accel; crypto_accel ];
  link (Link.Hierarchy (0, 1)) 0;
  link (Link.Hierarchy (1, 2)) 0;
  link (Link.Hierarchy (2, 3)) 0;
  (* Misses flow eSwitch -> Arm; finished slow-path packets re-enter the
     eSwitch for egress (same unit, so no extra pipeline edge needed). *)
  List.iter
    (fun (c : Unit_.t) ->
      link (Link.Pipeline (eswitch.Unit_.id, c.Unit_.id)) 0;
      link (Link.Pipeline (c.Unit_.id, csum_accel.Unit_.id)) 0;
      link (Link.Hub_edge (2, Link.U c.Unit_.id)) 0)
    arm_cores;
  link (Link.Hub_edge (0, Link.U eswitch.Unit_.id)) 0;
  link (Link.Hub_edge (1, Link.U eswitch.Unit_.id)) 0;
  link (Link.Hub_edge (2, Link.U eswitch.Unit_.id)) 0;
  link (Link.Hub_edge (3, Link.M 3)) 0;
  {
    Graph.name = "bluefield-dpu-25g";
    arch = Graph.Off_path;
    units = Array.of_list (List.rev !units);
    memories;
    hubs;
    links = List.rev !links;
    params;
  }

let default = create ()
