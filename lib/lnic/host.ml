(* x86 host expressed as an LNIC graph: 3.4 GHz cores (Xeon-class, per
   the paper's §4 testbed), conventional cache hierarchy, no NIC
   accelerators.  Cycle counts below are x86-typical. *)

let pcie_roundtrip_ns = 1800.

let params : Params.t =
  {
    pname = "x86-host";
    core_op_cycles =
      Params.
        [ (Alu, 1.);
          (Mul, 3.);
          (Div, 20.);
          (Fp, 2.);
          (Move, 1.);
          (Branch, 1.);
          (Hash, 8.);
          (Load, 1.);
          (Store, 1.);
          (Atomic, 12.);
          (Call, 3.) ];
    fpu_emulation_factor = 1.;
    core_vcalls =
      Params.
        [ (V_parse_header, Cost_fn.const 60.);
          (V_modify_header, Cost_fn.linear ~base:1. ~per_unit:1.);
          (V_checksum, Cost_fn.linear ~base:120. ~per_unit:0.12);
          (V_crypto, Cost_fn.linear ~base:200. ~per_unit:1.5); (* AES-NI *)
          (V_table_lookup, Cost_fn.logarithmic ~base:40. ~log2_coeff:3.);
          (V_lpm_lookup, Cost_fn.linear ~base:400. ~per_unit:14.);
          (V_table_update, Cost_fn.logarithmic ~base:60. ~log2_coeff:3.);
          (V_payload_scan, Cost_fn.linear ~base:3000. ~per_unit:130.);
          (V_meter, Cost_fn.const 25.);
          (V_flow_stats, Cost_fn.const 20.);
          (V_emit, Cost_fn.linear ~base:150. ~per_unit:0.05);
          (V_drop, Cost_fn.const 5.) ];
    accel_vcalls = [];
    accel_sram_bytes = [];
    packet_ctm_threshold = 65536; (* packets always fit host buffers *)
    (* Kernel-bypass RX/TX path per packet: descriptor handling, DMA
       setup and completion polling — ~1.2 us at 3.4 GHz each way. *)
    wire_ingress = Cost_fn.linear ~base:4000. ~per_unit:0.8;
    wire_egress = Cost_fn.linear ~base:4000. ~per_unit:0.8;
  }

let create ?(cores = 6) () =
  if cores < 1 then invalid_arg "Host.create: need at least one core";
  let units =
    Array.init cores (fun i ->
        { Unit_.id = i;
          name = Printf.sprintf "xeon%d" i;
          kind = Unit_.General_core { threads = 2; has_fpu = true };
          island = None;
          freq_mhz = 3400;
          stage = 1 })
  in
  let memories =
    [| { Memory.id = 0; name = "l1"; level = Memory.Local; size_bytes = 32 * 1024;
         read_cycles = 4; write_cycles = 4; atomic_cycles = 12; cache = None;
         island = None };
       { Memory.id = 1; name = "l2"; level = Memory.Cluster;
         size_bytes = 256 * 1024; read_cycles = 12; write_cycles = 12;
         atomic_cycles = 20; cache = None; island = None };
       { Memory.id = 2; name = "llc"; level = Memory.Internal;
         size_bytes = 20 * 1024 * 1024; read_cycles = 40; write_cycles = 40;
         atomic_cycles = 60; cache = None; island = None };
       { Memory.id = 3; name = "dram"; level = Memory.External;
         size_bytes = 128 * 1024 * 1024 * 1024; read_cycles = 200;
         write_cycles = 200; atomic_cycles = 250;
         cache = Some { Memory.cache_bytes = 20 * 1024 * 1024; hit_cycles = 40 };
         island = None } |]
  in
  let hubs =
    [| { Hub.id = 0; name = "rx-queue"; kind = `Ingress; queue_capacity = 4096;
         discipline = Hub.Fifo; per_packet_cycles = 50 };
       { Hub.id = 1; name = "tx-queue"; kind = `Egress; queue_capacity = 4096;
         discipline = Hub.Fifo; per_packet_cycles = 50 } |]
  in
  let links = ref [] in
  let link kind weight = links := { Link.kind; weight_cycles = weight } :: !links in
  Array.iter
    (fun (c : Unit_.t) ->
      Array.iter (fun (m : Memory.t) -> link (Link.Access (c.id, m.id)) 0) memories;
      link (Link.Hub_edge (0, Link.U c.id)) 0)
    units;
  link (Link.Hierarchy (0, 1)) 0;
  link (Link.Hierarchy (1, 2)) 0;
  link (Link.Hierarchy (2, 3)) 0;
  {
    Graph.name = "x86-host";
    arch = Graph.Host_only;
    units;
    memories;
    hubs;
    links = List.rev !links;
    params;
  }

let default = create ()
