type error = { what : string; detail : string }

let err what fmt = Printf.ksprintf (fun detail -> { what; detail }) fmt

let errors (g : Graph.t) =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  (* Dense ids. *)
  Array.iteri
    (fun i (u : Unit_.t) ->
      if u.id <> i then add (err "unit-id" "unit %s has id %d at index %d" u.name u.id i))
    g.units;
  Array.iteri
    (fun i (m : Memory.t) ->
      if m.id <> i then add (err "memory-id" "memory %s has id %d at index %d" m.name m.id i))
    g.memories;
  Array.iteri
    (fun i (h : Hub.t) ->
      if h.id <> i then add (err "hub-id" "hub %s has id %d at index %d" h.name h.id i))
    g.hubs;
  let nu = Array.length g.units
  and nm = Array.length g.memories
  and nh = Array.length g.hubs in
  let ep_ok = function
    | Link.U u -> u >= 0 && u < nu
    | Link.M m -> m >= 0 && m < nm
    | Link.H h -> h >= 0 && h < nh
  in
  List.iter
    (fun l ->
      if not (ep_ok (Link.src l) && ep_ok (Link.dst l)) then
        add (err "link-endpoint" "dangling link %s" (Format.asprintf "%a" Link.pp l)))
    g.links;
  (* Pipeline edges respect stages. *)
  List.iter
    (fun l ->
      match l.Link.kind with
      | Link.Pipeline (a, b) when ep_ok (Link.U a) && ep_ok (Link.U b) ->
          let sa = (Graph.unit_ g a).Unit_.stage and sb = (Graph.unit_ g b).Unit_.stage in
          if sa > sb then
            add (err "pipeline-stage" "pipeline edge u%d(stage %d) -> u%d(stage %d)" a sa b sb)
      | _ -> ())
    g.links;
  (* General cores must reach some memory. *)
  Array.iter
    (fun (u : Unit_.t) ->
      if Unit_.is_general u && Graph.reachable_memories g ~unit_id:u.id = [] then
        add (err "core-memory" "core %s reaches no memory region" u.name))
    g.units;
  (* Hierarchy edges: closer -> farther. *)
  List.iter
    (fun l ->
      match l.Link.kind with
      | Link.Hierarchy (a, b) when ep_ok (Link.M a) && ep_ok (Link.M b) ->
          let la = (Graph.memory g a).Memory.level and lb = (Graph.memory g b).Memory.level in
          if Memory.level_rank la >= Memory.level_rank lb then
            add
              (err "hierarchy-order" "hierarchy edge %s -> %s not faster-to-slower"
                 (Memory.level_name la) (Memory.level_name lb))
      | _ -> ())
    g.links;
  (* Island references. *)
  let islands =
    Array.to_list g.units
    |> List.filter_map (fun (u : Unit_.t) -> u.island)
    |> List.sort_uniq compare
  in
  Array.iter
    (fun (m : Memory.t) ->
      match m.island with
      | Some isl when not (List.mem isl islands) ->
          add (err "memory-island" "memory %s references unknown island %d" m.name isl)
      | _ -> ())
    g.memories;
  (* Parameter completeness. *)
  List.iter
    (fun op ->
      if not (List.mem_assoc op g.params.Params.core_op_cycles) then
        add (err "params-op" "missing op cost for %s" (Params.op_name op)))
    Params.all_op_classes;
  (* Off-path invariants: an eSwitch fast path is only meaningful when it
     is wired into the datapath and backed by flow-cache capacity, and an
     off-path NIC without a host DMA hub has no way to reach the host. *)
  Array.iter
    (fun (u : Unit_.t) ->
      if Unit_.is_accelerator u Unit_.Eswitch then begin
        let touches l =
          Link.src l = Link.U u.Unit_.id || Link.dst l = Link.U u.Unit_.id
        in
        if not (List.exists touches g.links) then
          add
            (err "eswitch-disconnected"
               "eSwitch %s has no links: attach it to the ingress/egress hubs \
                and give it a pipeline edge to the cores so misses can be \
                upcalled"
               u.Unit_.name);
        if Params.accel_sram g.params Unit_.Eswitch = 0 then
          add
            (err "eswitch-no-flow-cache"
               "eSwitch %s advertises a zero-capacity flow cache: every \
                packet would miss; set accel_sram_bytes for Eswitch"
               u.Unit_.name)
      end)
    g.units;
  (if g.arch = Graph.Off_path then
     let has_dma =
       Array.exists (fun (h : Hub.t) -> h.Hub.kind = `Host_dma) g.hubs
     in
     if not has_dma then
       add
         (err "offpath-no-pcie"
            "off-path NIC %s has no Host_dma hub: add a PCIe DMA link so \
             slow-path packets can round-trip to the host"
            g.name));
  List.rev !errs

let is_valid g = errors g = []

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.what e.detail

let warnings (g : Graph.t) =
  let p = g.Graph.params in
  let warns = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warns := s :: !warns) fmt in
  (* Virtual calls nobody serves. *)
  List.iter
    (fun vc ->
      let on_core = Params.core_vcall_cost p vc <> None in
      let on_accel =
        Array.to_list g.Graph.units
        |> List.exists (fun (u : Unit_.t) ->
               match u.Unit_.kind with
               | Unit_.Accelerator k -> Params.accel_vcall_cost p k vc <> None
               | Unit_.General_core _ -> false)
      in
      if (not on_core) && not on_accel then
        warn "virtual call %s has no executor on this NIC (NFs using it are unmappable)"
          (Params.vcall_name vc))
    Params.all_vcalls;
  (* Accelerators present but without any cost table. *)
  Array.iter
    (fun (u : Unit_.t) ->
      match u.Unit_.kind with
      | Unit_.Accelerator k ->
          if not (List.mem_assoc k p.Params.accel_vcalls) then
            warn "accelerator %s has no cost table (it can execute nothing)" u.Unit_.name
      | Unit_.General_core _ -> ())
    g.Graph.units;
  (* Lookup accelerators without SRAM cannot host state. *)
  Array.iter
    (fun (u : Unit_.t) ->
      if Unit_.is_accelerator u Unit_.Lookup && Params.accel_sram p Unit_.Lookup = 0 then
        warn "lookup accelerator %s advertises no SRAM (state can never live there)"
          u.Unit_.name)
    g.Graph.units;
  Array.iter
    (fun (h : Hub.t) ->
      if h.Hub.queue_capacity <= 0 then
        warn "hub %s has zero queue capacity (every burst drops)" h.Hub.name)
    g.Graph.hubs;
  List.rev !warns
