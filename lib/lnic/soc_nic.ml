(* ARM-SoC SmartNIC: plausible parameters for a BlueField-class device.
   Cores are ~2.5x the NPU clock and execute richer ISAs (hardware FP,
   faster div), but there is no match/action or flow-cache hardware and
   DRAM sits behind a conventional L1/L2 hierarchy. *)

let params : Params.t =
  {
    pname = "soc-armnic-25g";
    core_op_cycles =
      Params.
        [ (Alu, 1.);
          (Mul, 3.);
          (Div, 12.);
          (Fp, 2.);
          (Move, 1.);
          (Branch, 1.);
          (Hash, 10.);
          (Load, 1.);
          (Store, 1.);
          (Atomic, 4.);
          (Call, 4.) ];
    fpu_emulation_factor = 1.; (* has FPUs; factor unused *)
    core_vcalls =
      Params.
        [ (V_parse_header, Cost_fn.const 90.);
          (V_modify_header, Cost_fn.linear ~base:1. ~per_unit:2.);
          (V_checksum, Cost_fn.linear ~base:300. ~per_unit:0.30);
          (V_crypto, Cost_fn.linear ~base:250. ~per_unit:8.);
          (V_table_lookup, Cost_fn.logarithmic ~base:60. ~log2_coeff:3.);
          (V_lpm_lookup, Cost_fn.linear ~base:700. ~per_unit:22.);
          (V_table_update, Cost_fn.logarithmic ~base:90. ~log2_coeff:3.);
          (V_payload_scan, Cost_fn.linear ~base:5000. ~per_unit:260.);
          (V_meter, Cost_fn.const 40.);
          (V_flow_stats, Cost_fn.const 30.);
          (V_emit, Cost_fn.linear ~base:120. ~per_unit:0.05);
          (V_drop, Cost_fn.const 8.) ];
    accel_vcalls =
      [ ( Unit_.Checksum,
          Params.[ (V_checksum, Cost_fn.linear ~base:80. ~per_unit:0.20) ] );
        ( Unit_.Crypto,
          Params.[ (V_crypto, Cost_fn.linear ~base:100. ~per_unit:0.8) ] ) ];
    accel_sram_bytes = [];
    packet_ctm_threshold = 2048; (* larger on-chip packet buffer *)
    wire_ingress = Cost_fn.linear ~base:900. ~per_unit:1.6;
    wire_egress = Cost_fn.linear ~base:900. ~per_unit:1.6;
  }

let create ?(cores = 8) () =
  if cores < 1 then invalid_arg "Soc_nic.create: need at least one core";
  let units = ref [] and unit_id = ref 0 in
  let add_unit name kind stage =
    let u = { Unit_.id = !unit_id; name; kind; island = None; freq_mhz = 2000; stage } in
    incr unit_id;
    units := u :: !units;
    u
  in
  let arm_cores =
    List.init cores (fun i ->
        add_unit
          (Printf.sprintf "arm%d" i)
          (Unit_.General_core { threads = 2; has_fpu = true })
          1)
  in
  let csum_accel = add_unit "csum_engine" (Unit_.Accelerator Unit_.Checksum) 1 in
  let crypto_accel = add_unit "crypto_engine" (Unit_.Accelerator Unit_.Crypto) 1 in
  let memories =
    [| { Memory.id = 0; name = "l1"; level = Memory.Local; size_bytes = 64 * 1024;
         read_cycles = 4; write_cycles = 4; atomic_cycles = 8; cache = None;
         island = None };
       { Memory.id = 1; name = "l2"; level = Memory.Cluster;
         size_bytes = 1024 * 1024; read_cycles = 20; write_cycles = 20;
         atomic_cycles = 30; cache = None; island = None };
       { Memory.id = 2; name = "sram"; level = Memory.Internal;
         size_bytes = 8 * 1024 * 1024; read_cycles = 60; write_cycles = 60;
         atomic_cycles = 80; cache = None; island = None };
       { Memory.id = 3; name = "dram"; level = Memory.External;
         size_bytes = 16 * 1024 * 1024 * 1024; read_cycles = 180;
         write_cycles = 180; atomic_cycles = 220;
         cache = Some { Memory.cache_bytes = 8 * 1024 * 1024; hit_cycles = 45 };
         island = None } |]
  in
  let hubs =
    [| { Hub.id = 0; name = "ingress"; kind = `Ingress; queue_capacity = 1024;
         discipline = Hub.Fifo; per_packet_cycles = 30 };
       { Hub.id = 1; name = "egress"; kind = `Egress; queue_capacity = 1024;
         discipline = Hub.Fifo; per_packet_cycles = 30 } |]
  in
  let links = ref [] in
  let link kind weight = links := { Link.kind; weight_cycles = weight } :: !links in
  List.iter
    (fun (c : Unit_.t) ->
      Array.iter (fun (m : Memory.t) -> link (Link.Access (c.id, m.id)) 0) memories)
    arm_cores;
  List.iter
    (fun (a : Unit_.t) ->
      link (Link.Access (a.id, 1)) 0;
      link (Link.Access (a.id, 3)) 0)
    [ csum_accel; crypto_accel ];
  link (Link.Hierarchy (0, 1)) 0;
  link (Link.Hierarchy (1, 2)) 0;
  link (Link.Hierarchy (2, 3)) 0;
  List.iter
    (fun (c : Unit_.t) ->
      link (Link.Pipeline (c.Unit_.id, csum_accel.Unit_.id)) 0;
      link (Link.Hub_edge (0, Link.U c.Unit_.id)) 0)
    arm_cores;
  link (Link.Hub_edge (1, Link.U csum_accel.Unit_.id)) 0;
  {
    Graph.name = "soc-armnic-25g";
    arch = Graph.On_path;
    units = Array.of_list (List.rev !units);
    memories;
    hubs;
    links = List.rev !links;
    params;
  }

let default = create ()
