type accel_kind = Checksum | Crypto | Lookup | Parse | Eswitch

type kind =
  | General_core of { threads : int; has_fpu : bool }
  | Accelerator of accel_kind

type t = {
  id : int;
  name : string;
  kind : kind;
  island : int option;
  freq_mhz : int;
  stage : int;
}

let is_general t = match t.kind with General_core _ -> true | Accelerator _ -> false

let is_accelerator t k =
  match t.kind with Accelerator k' -> k = k' | General_core _ -> false

let threads t = match t.kind with General_core { threads; _ } -> threads | Accelerator _ -> 1

let accel_name = function
  | Checksum -> "checksum"
  | Crypto -> "crypto"
  | Lookup -> "lookup"
  | Parse -> "parse"
  | Eswitch -> "eswitch"

let pp fmt t =
  match t.kind with
  | General_core { threads; has_fpu } ->
      Format.fprintf fmt "%s#%d(core,%dthr%s,stage=%d)" t.name t.id threads
        (if has_fpu then ",fpu" else "")
        t.stage
  | Accelerator k ->
      Format.fprintf fmt "%s#%d(accel:%s,stage=%d)" t.name t.id (accel_name k) t.stage
