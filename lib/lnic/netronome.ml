(* Construction of the Netronome-like LNIC.  Cycle parameters are the ones
   the paper reports in §2.1/§3.2; see netronome.mli. *)

let npu_freq_mhz = 800

let params : Params.t =
  {
    pname = "netronome-agilio-cx-40g";
    core_op_cycles =
      Params.
        [ (Alu, 2.);       (* metadata-style ALU ops: 2-5 cyc (§3.2) *)
          (Mul, 5.);
          (Div, 24.);
          (Fp, 4.);        (* nominal; NPUs have no FPU, factor applies *)
          (Move, 2.);
          (Branch, 1.);
          (Hash, 14.);     (* CRC-based hash of a small key *)
          (Load, 1.);      (* issue cost; region latency added at placement *)
          (Store, 1.);
          (Atomic, 2.);
          (Call, 6.) ];
    fpu_emulation_factor = 30.; (* software float emulation (§3.4) *)
    core_vcalls =
      Params.
        [ (* Header parse ~150 cyc incl. the CTM->local copy (§3.2). *)
          (V_parse_header, Cost_fn.const 150.);
          (V_modify_header, Cost_fn.linear ~base:2. ~per_unit:3.);
          (* Software checksum: the ingress engine needs ~300 cyc for a
             1000 B packet; NPU code pays ~1700 extra cycles of memory
             traffic (§2.1). *)
          (V_checksum, Cost_fn.linear ~base:1750. ~per_unit:0.55);
          (V_crypto, Cost_fn.linear ~base:400. ~per_unit:20.);
          (* Hash/exact-match table in software: constant probe work;
             region access latency is added per placement. *)
          (V_table_lookup, Cost_fn.logarithmic ~base:80. ~log2_coeff:4.);
          (V_lpm_lookup, Cost_fn.linear ~base:1000. ~per_unit:40.);
          (* Software match/action rule walk in DRAM grows linearly with
             the rule count — the Figure 3a regime. *)
          (V_table_update, Cost_fn.logarithmic ~base:120. ~log2_coeff:4.);
          (V_payload_scan, Cost_fn.linear ~base:8000. ~per_unit:450.);
          (V_meter, Cost_fn.const 60.);
          (V_flow_stats, Cost_fn.const 40.);
          (V_emit, Cost_fn.linear ~base:80. ~per_unit:0.05);
          (V_drop, Cost_fn.const 10.) ];
    accel_vcalls =
      [ ( Unit_.Parse,
          Params.[ (V_parse_header, Cost_fn.const 40.) ] );
        ( Unit_.Checksum,
          (* 300 cycles at 1000 B with data at the ingress engine (§2.1). *)
          Params.[ (V_checksum, Cost_fn.linear ~base:50. ~per_unit:0.25) ] );
        ( Unit_.Crypto,
          Params.[ (V_crypto, Cost_fn.linear ~base:120. ~per_unit:1.0) ] );
        ( Unit_.Lookup,
          (* Flow-cache SRAM: near-constant hit cost, orders of magnitude
             below the software match/action walk (§2.1). *)
          Params.
            [ (V_table_lookup, Cost_fn.const 130.);
              (V_lpm_lookup, Cost_fn.const 150.);
              (V_table_update, Cost_fn.const 180.) ] ) ];
    accel_sram_bytes = [ (Unit_.Lookup, 2 * 1024 * 1024) ];
    packet_ctm_threshold = 1024; (* <1 kB packets stay in CTM (§3.2) *)
    (* Store-and-forward DMA between the wire and packet memory; the
       per-byte slope is what gives payload-size dependence to NFs whose
       compute is size-independent (the Figure 3c regime). *)
    wire_ingress = Cost_fn.linear ~base:900. ~per_unit:2.0;
    wire_egress = Cost_fn.linear ~base:900. ~per_unit:2.0;
  }

let create ?(islands = 5) ?(npus_per_island = 12) () =
  if islands < 1 || npus_per_island < 1 then
    invalid_arg "Netronome.create: need at least one island and one NPU";
  let units = ref [] and unit_id = ref 0 in
  let add_unit name kind island stage =
    let u =
      { Unit_.id = !unit_id; name; kind; island; freq_mhz = npu_freq_mhz; stage }
    in
    incr unit_id;
    units := u :: !units;
    u
  in
  let npus =
    List.concat
      (List.init islands (fun isl ->
           List.init npus_per_island (fun i ->
               add_unit
                 (Printf.sprintf "npu%d.%d" isl i)
                 (Unit_.General_core { threads = 8; has_fpu = false })
                 (Some isl) 1)))
  in
  let parse_accel = add_unit "ma_engine" (Unit_.Accelerator Unit_.Parse) None 0 in
  (* NPUs issue flow-cache lookups mid-processing, so the lookup engine
     is not ingress-pinned like the parser. *)
  let lookup_accel = add_unit "flow_cache" (Unit_.Accelerator Unit_.Lookup) None 1 in
  let csum_accel = add_unit "csum_engine" (Unit_.Accelerator Unit_.Checksum) None 1 in
  let crypto_accel = add_unit "crypto_engine" (Unit_.Accelerator Unit_.Crypto) None 1 in
  let memories = ref [] and mem_id = ref 0 in
  let add_mem name level size read write atomic cache island =
    let m =
      { Memory.id = !mem_id; name; level; size_bytes = size; read_cycles = read;
        write_cycles = write; atomic_cycles = atomic; cache; island }
    in
    incr mem_id;
    memories := m :: !memories;
    m
  in
  let locals =
    List.init islands (fun isl ->
        add_mem (Printf.sprintf "local%d" isl) Memory.Local 4096 2 2 3 None (Some isl))
  in
  let ctms =
    List.init islands (fun isl ->
        add_mem
          (Printf.sprintf "ctm%d" isl)
          Memory.Cluster (256 * 1024) 50 50 60 None (Some isl))
  in
  let imem = add_mem "imem" Memory.Internal (4 * 1024 * 1024) 250 250 280 None None in
  let emem =
    add_mem "emem" Memory.External (8 * 1024 * 1024 * 1024) 500 500 550
      (Some { Memory.cache_bytes = 3 * 1024 * 1024; hit_cycles = 150 })
      None
  in
  let hubs =
    [| { Hub.id = 0; name = "ingress"; kind = `Ingress; queue_capacity = 512;
         discipline = Hub.Fifo; per_packet_cycles = 20 };
       { Hub.id = 1; name = "egress"; kind = `Egress; queue_capacity = 512;
         discipline = Hub.Fifo; per_packet_cycles = 20 };
       { Hub.id = 2; name = "fabric"; kind = `Fabric; queue_capacity = 256;
         discipline = Hub.Fifo; per_packet_cycles = 8 } |]
  in
  let links = ref [] in
  let link kind weight = links := { Link.kind; weight_cycles = weight } :: !links in
  (* NPU memory buses: local and own-island CTM at no extra weight, remote
     CTMs with a NUMA penalty, IMEM/EMEM through the fabric. *)
  List.iter
    (fun (npu : Unit_.t) ->
      let isl = Option.get npu.Unit_.island in
      List.iteri
        (fun i (l : Memory.t) -> if i = isl then link (Link.Access (npu.id, l.id)) 0)
        locals;
      List.iteri
        (fun i (c : Memory.t) ->
          link (Link.Access (npu.id, c.id)) (if i = isl then 0 else 60))
        ctms;
      link (Link.Access (npu.id, imem.Memory.id)) 0;
      link (Link.Access (npu.id, emem.Memory.id)) 0)
    npus;
  (* Accelerators read packet data from the CTMs (ingress side). *)
  List.iter
    (fun (acc : Unit_.t) ->
      List.iter (fun (c : Memory.t) -> link (Link.Access (acc.id, c.id)) 0) ctms;
      link (Link.Access (acc.id, imem.Memory.id)) 0;
      link (Link.Access (acc.id, emem.Memory.id)) 0)
    [ parse_accel; lookup_accel; csum_accel; crypto_accel ];
  (* Memory hierarchy: local ~> CTM ~> IMEM ~> EMEM. *)
  List.iteri
    (fun isl (l : Memory.t) ->
      link (Link.Hierarchy (l.id, (List.nth ctms isl).Memory.id)) 0)
    locals;
  List.iter
    (fun (c : Memory.t) -> link (Link.Hierarchy (c.id, imem.Memory.id)) 0)
    ctms;
  link (Link.Hierarchy (imem.Memory.id, emem.Memory.id)) 0;
  (* Pipeline: ingress engines feed the NPU stage, NPUs feed the egress-side
     checksum engine; crypto sits alongside the NPU stage. *)
  List.iter
    (fun (npu : Unit_.t) ->
      link (Link.Pipeline (parse_accel.Unit_.id, npu.id)) 0;
      link (Link.Pipeline (lookup_accel.Unit_.id, npu.id)) 0;
      link (Link.Pipeline (npu.id, csum_accel.Unit_.id)) 0)
    npus;
  (* Hub attachments. *)
  link (Link.Hub_edge (0, Link.U parse_accel.Unit_.id)) 0;
  link (Link.Hub_edge (0, Link.U lookup_accel.Unit_.id)) 0;
  List.iter (fun (npu : Unit_.t) -> link (Link.Hub_edge (2, Link.U npu.id)) 0) npus;
  link (Link.Hub_edge (1, Link.U csum_accel.Unit_.id)) 0;
  {
    Graph.name = "netronome-agilio-cx-40g";
    arch = Graph.On_path;
    units = Array.of_list (List.rev !units);
    memories = Array.of_list (List.rev !memories);
    hubs;
    links = List.rev !links;
    params;
  }

let default = create ()

let ctm_of_island g isl =
  match
    Array.to_list g.Graph.memories
    |> List.find_opt (fun m ->
           m.Memory.level = Memory.Cluster && m.Memory.island = Some isl)
  with
  | Some m -> m
  | None -> raise Not_found

let find_level g level =
  match
    Array.to_list g.Graph.memories
    |> List.find_opt (fun m -> m.Memory.level = level)
  with
  | Some m -> m
  | None -> raise Not_found

let imem g = find_level g Memory.Internal
let emem g = find_level g Memory.External
