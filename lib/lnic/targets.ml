(* Central name -> LNIC-model resolution.  The CLI, the examples, and
   the sweep-spec parser all accept the same target names; keep the
   table in one place so adding a NIC model is a one-line change. *)

let all =
  [ ("netronome", Netronome.default);
    ("soc", Soc_nic.default);
    ("bluefield", Bluefield.default);
    ("asic", Asic_nic.default);
    ("host", Host.default) ]

(* Offload targets only — what `clara nics` and the selection examples
   compare; the host is the baseline, not a NIC. *)
let nics = List.filter (fun (n, _) -> n <> "host") all

let names = List.map fst all

let arch_of name =
  Option.map (fun (g : Graph.t) -> g.Graph.arch) (List.assoc_opt name all)

let find name = List.assoc_opt name all

(* Edit distance for of_name's did-you-mean: classic two-row
   Levenshtein; target names are short so no need for anything fancy. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  List.filter_map
    (fun cand ->
      let d = edit_distance (String.lowercase_ascii name) cand in
      if d <= 2 then Some (d, cand) else None)
    names
  |> List.sort compare
  |> function
  | [] -> None
  | (_, best) :: _ -> Some best

let of_name name =
  match find name with
  | Some g -> Ok g
  | None ->
      let hint =
        match suggest name with
        | Some s -> Printf.sprintf " — did you mean %S?" s
        | None -> ""
      in
      Error
        (Printf.sprintf "unknown NIC %S (expected %s)%s" name
           (String.concat "|" names) hint)
