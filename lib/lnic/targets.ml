(* Central name -> LNIC-model resolution.  The CLI, the examples, and
   the sweep-spec parser all accept the same target names; keep the
   table in one place so adding a NIC model is a one-line change. *)

let all =
  [ ("netronome", Netronome.default);
    ("soc", Soc_nic.default);
    ("asic", Asic_nic.default);
    ("host", Host.default) ]

(* Offload targets only — what `clara nics` and the selection examples
   compare; the host is the baseline, not a NIC. *)
let nics = List.filter (fun (n, _) -> n <> "host") all

let names = List.map fst all

let find name = List.assoc_opt name all

let of_name name =
  match find name with
  | Some g -> Ok g
  | None ->
      Error
        (Printf.sprintf "unknown NIC %S (expected %s)" name
           (String.concat "|" names))
