(** The logical SmartNIC: an annotated graph ⟨V,E⟩ (§3.1).

    V unions compute units, memory regions and switching hubs; E carries
    memory buses (NUMA-weighted), hierarchy edges, pipeline edges and hub
    attachments.  The graph plus its {!Params.t} is everything Clara knows
    about a NIC backend. *)

(** Where the NIC's general cores sit relative to the wire (ROADMAP
    open item 1: cross-architecture clarity).

    - [On_path]: every packet flows through the cores (NPU/ASIC style);
      accelerator misses stay in the same clock domain.
    - [Off_path]: a hardware eSwitch fast path handles cached flows at
      line rate and only flow-cache {e misses} are upcalled to the core
      complex (BlueField/DPU style) — predictions become two-regime.
    - [Host_only]: no NIC at all; the baseline x86 path. *)
type arch = On_path | Off_path | Host_only

val arch_name : arch -> string
(** Stable lower-case name ("on-path", "off-path", "host") — printed by
    [clara nics] and used in reports. *)

type t = {
  name : string;
  arch : arch;
  units : Unit_.t array;
  memories : Memory.t array;
  hubs : Hub.t array;
  links : Link.t list;
  params : Params.t;
}

val unit_ : t -> int -> Unit_.t
(** @raise Invalid_argument on a bad id. *)

val memory : t -> int -> Memory.t
val hub : t -> int -> Hub.t

val general_cores : t -> Unit_.t list
val accelerators : t -> Unit_.t list
val find_accelerator : t -> Unit_.accel_kind -> Unit_.t option

val upcall_cycles : t -> int
(** Per-packet cost of an eSwitch fast-path miss being upcalled to the
    core complex, read off the fabric hub; 0 on [On_path]/[Host_only]
    graphs (a miss there never changes execution domains). *)

val access_weight : t -> unit_id:int -> mem_id:int -> int option
(** NUMA weight of the bus between a unit and a region; [None] when the
    unit cannot reach the region at all. *)

val access_cycles : t -> unit_id:int -> mem_id:int -> [ `Read | `Write | `Atomic ] -> int option
(** Full access latency: region base cost + bus weight. *)

val reachable_memories : t -> unit_id:int -> (Memory.t * int) list
(** Regions a unit can touch, with their NUMA weights, fastest first. *)

val pipeline_ok : t -> int -> int -> bool
(** [pipeline_ok g u1 u2]: can work flow from unit [u1] to unit [u2]
    (equal unit, or non-decreasing stage order)? *)

(** A placement class groups interchangeable units (e.g. the 12 identical
    NPUs of an island) so the mapping ILP stays small while capacity
    constraints still see the real multiplicity. *)
type placement_class = { rep : Unit_.t; members : int list }

val placement_classes : t -> placement_class list

val total_threads : t -> int
(** Sum of general-core hardware threads: the NIC's packet parallelism. *)

val slice : t -> keep_num:int -> keep_den:int -> t
(** [slice g ~keep_num ~keep_den] models a fraction of the NIC for
    co-resident NF reasoning (§3.5): keeps ⌈num/den⌉ of the general cores
    and scales shared memory capacities and queue depths by the same
    fraction.  Accelerators remain (they are time-shared). *)

val pp : Format.formatter -> t -> unit
