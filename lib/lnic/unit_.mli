(** Typed compute units of the logical NIC (§3.1).

    A node in the LNIC graph that executes work: general-purpose cores
    (NPU, ARM), header processing engines, or domain-specific
    accelerators.  Accelerators handle only the virtual calls they
    advertise; general cores can run anything, falling back to software
    emulation for missing features (e.g. FPUs, §3.4). *)

type accel_kind =
  | Checksum        (** Internet checksum / CRC engines. *)
  | Crypto          (** AES/SHA bulk crypto. *)
  | Lookup          (** Hardware match/action with flow-cache SRAM. *)
  | Parse           (** Dedicated header parser / ingress engine. *)
  | Eswitch
      (** Hardware eSwitch match-action engine of an off-path DPU: a
          high-capacity fast path whose flow-cache misses upcall to the
          general cores (two-regime cost, see {!Graph.arch}). *)

type kind =
  | General_core of { threads : int; has_fpu : bool }
      (** Run-to-completion packet cores; a packet is bound to one
          thread (§3.2). *)
  | Accelerator of accel_kind

type t = {
  id : int;            (** Dense id within the LNIC. *)
  name : string;
  kind : kind;
  island : int option; (** Island/cluster grouping, when the NIC has one. *)
  freq_mhz : int;      (** Clock, used to convert cycles to wall time. *)
  stage : int;
      (** Pipeline stage index; compute-to-compute edges must be
          non-decreasing in [stage] (§3.4's Π ordering constraint). *)
}

val is_general : t -> bool
val is_accelerator : t -> accel_kind -> bool
val threads : t -> int
(** 1 for accelerators. *)

val accel_name : accel_kind -> string
(** Stable lower-case name ("checksum", "crypto", "lookup", "parse",
    "eswitch") — used in reports and in sweep cache keys, so renaming
    one invalidates cached results. *)

val pp : Format.formatter -> t -> unit
