(* Pipeline ASIC: stage processors are modeled as single-thread "cores"
   with line-rate header ops, plus per-stage match/action lookup engines.
   The capability gaps are expressed through the parameter tables: no
   payload_scan / crypto / software-checksum entries means those virtual
   calls have no home, and the mapping ILP returns infeasible. *)

let params : Params.t =
  {
    pname = "asic-pipeline-100g";
    core_op_cycles =
      Params.
        [ (Alu, 1.);
          (Mul, 2.);
          (Div, 64.);   (* sequential shift-subtract helper block *)
          (Fp, 1000.);  (* effectively unavailable; no emulation code *)
          (Move, 1.);
          (Branch, 1.);
          (Hash, 4.);
          (Load, 1.);
          (Store, 1.);
          (Atomic, 4.);
          (Call, 2.) ];
    fpu_emulation_factor = 1000.;
    core_vcalls =
      Params.
        [ (* Only header-level operations exist in the pipeline. *)
          (V_parse_header, Cost_fn.const 30.);
          (V_modify_header, Cost_fn.linear ~base:1. ~per_unit:1.);
          (V_checksum, Cost_fn.const 60.); (* incremental header checksum unit *)
          (V_table_lookup, Cost_fn.const 25.);
          (V_lpm_lookup, Cost_fn.const 30.); (* TCAM: constant-time *)
          (V_table_update, Cost_fn.const 40.);
          (V_meter, Cost_fn.const 10.);
          (V_flow_stats, Cost_fn.const 8.);
          (V_emit, Cost_fn.const 20.);
          (V_drop, Cost_fn.const 2.)
          (* No V_payload_scan, no V_crypto: DPI-class NFs cannot map. *) ];
    accel_vcalls =
      [ ( Unit_.Parse,
          Params.[ (V_parse_header, Cost_fn.const 15.) ] );
        ( Unit_.Lookup,
          (* TCAM/SRAM match stages. *)
          Params.
            [ (V_table_lookup, Cost_fn.const 20.);
              (V_lpm_lookup, Cost_fn.const 20.);
              (V_table_update, Cost_fn.const 35.) ] ) ];
    accel_sram_bytes = [ (Unit_.Lookup, 12 * 1024 * 1024) ];
    packet_ctm_threshold = 16 * 1024; (* cut-through buffers *)
    wire_ingress = Cost_fn.linear ~base:120. ~per_unit:0.15;
    wire_egress = Cost_fn.linear ~base:120. ~per_unit:0.15;
  }

let create () =
  let units = ref [] and unit_id = ref 0 in
  let add name kind stage =
    let u = { Unit_.id = !unit_id; name; kind; island = None; freq_mhz = 1000; stage } in
    incr unit_id;
    units := u :: !units;
    u
  in
  let parser_ = add "parser" (Unit_.Accelerator Unit_.Parse) 0 in
  let stages =
    List.init 4 (fun i ->
        add
          (Printf.sprintf "ma_stage%d" i)
          (Unit_.General_core { threads = 1; has_fpu = false })
          (i + 1))
  in
  let tcam = add "tcam" (Unit_.Accelerator Unit_.Lookup) 1 in
  let memories =
    [| { Memory.id = 0; name = "phv"; level = Memory.Local; size_bytes = 4096;
         read_cycles = 1; write_cycles = 1; atomic_cycles = 2; cache = None;
         island = None };
       { Memory.id = 1; name = "stage_sram"; level = Memory.Cluster;
         size_bytes = 2 * 1024 * 1024; read_cycles = 10; write_cycles = 10;
         atomic_cycles = 12; cache = None; island = None };
       { Memory.id = 2; name = "shared_sram"; level = Memory.Internal;
         size_bytes = 16 * 1024 * 1024; read_cycles = 30; write_cycles = 30;
         atomic_cycles = 40; cache = None; island = None };
       { Memory.id = 3; name = "buffer_dram"; level = Memory.External;
         size_bytes = 4 * 1024 * 1024 * 1024; read_cycles = 300;
         write_cycles = 300; atomic_cycles = 360; cache = None; island = None } |]
  in
  let hubs =
    [| { Hub.id = 0; name = "ingress"; kind = `Ingress; queue_capacity = 2048;
         discipline = Hub.Fifo; per_packet_cycles = 5 };
       { Hub.id = 1; name = "egress"; kind = `Egress; queue_capacity = 2048;
         discipline = Hub.Fifo; per_packet_cycles = 5 } |]
  in
  let links = ref [] in
  let link kind weight = links := { Link.kind; weight_cycles = weight } :: !links in
  List.iter
    (fun (s : Unit_.t) ->
      Array.iter (fun (m : Memory.t) -> link (Link.Access (s.id, m.id)) 0) memories)
    stages;
  List.iter
    (fun (a : Unit_.t) ->
      link (Link.Access (a.id, 1)) 0;
      link (Link.Access (a.id, 2)) 0)
    [ parser_; tcam ];
  link (Link.Hierarchy (0, 1)) 0;
  link (Link.Hierarchy (1, 2)) 0;
  link (Link.Hierarchy (2, 3)) 0;
  (* Strict pipeline edges: parser feeds stage 1; stage i feeds i+1. *)
  (match stages with
  | first :: _ -> link (Link.Pipeline (parser_.Unit_.id, first.Unit_.id)) 0
  | [] -> ());
  let rec chain = function
    | (a : Unit_.t) :: (b :: _ as rest) ->
        link (Link.Pipeline (a.Unit_.id, b.Unit_.id)) 0;
        chain rest
    | _ -> ()
  in
  chain stages;
  link (Link.Hub_edge (0, Link.U parser_.Unit_.id)) 0;
  (match List.rev stages with
  | last :: _ -> link (Link.Hub_edge (1, Link.U last.Unit_.id)) 0
  | [] -> ());
  {
    Graph.name = "asic-pipeline-100g";
    arch = Graph.On_path;
    units = Array.of_list (List.rev !units);
    memories;
    hubs;
    links = List.rev !links;
    params;
  }

let default = create ()
