type arch = On_path | Off_path | Host_only

let arch_name = function
  | On_path -> "on-path"
  | Off_path -> "off-path"
  | Host_only -> "host"

type t = {
  name : string;
  arch : arch;
  units : Unit_.t array;
  memories : Memory.t array;
  hubs : Hub.t array;
  links : Link.t list;
  params : Params.t;
}

let get what arr i =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Lnic.Graph: bad %s id %d" what i)
  else arr.(i)

let unit_ t i = get "unit" t.units i
let memory t i = get "memory" t.memories i
let hub t i = get "hub" t.hubs i

let general_cores t =
  Array.to_list t.units |> List.filter Unit_.is_general

let accelerators t =
  Array.to_list t.units |> List.filter (fun u -> not (Unit_.is_general u))

let find_accelerator t kind =
  Array.to_list t.units |> List.find_opt (fun u -> Unit_.is_accelerator u kind)

(* The fast-path-miss penalty of an off-path NIC: the fabric hub models
   the eSwitch -> core upcall queue, so its per-packet cost is what a
   missed packet pays before the software slow path runs.  On-path NICs
   may also have a fabric hub (core-to-core switching), but there a miss
   never changes domains, so the upcall charge is zero. *)
let upcall_cycles t =
  match t.arch with
  | On_path | Host_only -> 0
  | Off_path -> (
      match
        List.find_opt (fun h -> h.Hub.kind = `Fabric) (Array.to_list t.hubs)
      with
      | Some h -> h.Hub.per_packet_cycles
      | None -> 0)

let access_weight t ~unit_id ~mem_id =
  List.find_map
    (fun l ->
      match l.Link.kind with
      | Link.Access (u, m) when u = unit_id && m = mem_id -> Some l.Link.weight_cycles
      | _ -> None)
    t.links

let access_cycles t ~unit_id ~mem_id mode =
  match access_weight t ~unit_id ~mem_id with
  | None -> None
  | Some w ->
      let m = memory t mem_id in
      let base =
        match mode with
        | `Read -> m.Memory.read_cycles
        | `Write -> m.Memory.write_cycles
        | `Atomic -> m.Memory.atomic_cycles
      in
      Some (base + w)

let reachable_memories t ~unit_id =
  List.filter_map
    (fun l ->
      match l.Link.kind with
      | Link.Access (u, m) when u = unit_id -> Some (memory t m, l.Link.weight_cycles)
      | _ -> None)
    t.links
  |> List.sort (fun (m1, w1) (m2, w2) ->
         compare (m1.Memory.read_cycles + w1) (m2.Memory.read_cycles + w2))

let pipeline_ok t u1 u2 =
  u1 = u2 || (unit_ t u1).Unit_.stage <= (unit_ t u2).Unit_.stage

type placement_class = { rep : Unit_.t; members : int list }

(* Two units are interchangeable when they share kind, island, frequency and
   stage — then any mapping decision for one applies to all. *)
let placement_classes t =
  let key (u : Unit_.t) = (u.kind, u.island, u.freq_mhz, u.stage) in
  let table = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun u ->
      let k = key u in
      match Hashtbl.find_opt table k with
      | None ->
          Hashtbl.add table k (ref [ u.Unit_.id ]);
          order := (k, u) :: !order
      | Some l -> l := u.Unit_.id :: !l)
    t.units;
  List.rev_map
    (fun (k, rep) ->
      let members = List.rev !(Hashtbl.find table k) in
      { rep; members })
    !order

let total_threads t =
  List.fold_left (fun acc u -> acc + Unit_.threads u) 0 (general_cores t)

let slice t ~keep_num ~keep_den =
  if keep_num <= 0 || keep_den <= 0 || keep_num > keep_den then
    invalid_arg "Lnic.Graph.slice: fraction must be in (0, 1]";
  let scale n = max 1 (n * keep_num / keep_den) in
  let cores = general_cores t in
  let keep_cores = scale (List.length cores) in
  (* Take cores round-robin across islands so each island keeps a share
     and island memories never dangle. *)
  let interleaved =
    let by_island = Hashtbl.create 4 in
    List.iter
      (fun u ->
        let k = u.Unit_.island in
        let l = try Hashtbl.find by_island k with Not_found -> [] in
        Hashtbl.replace by_island k (u :: l))
      (List.rev cores);
    let groups = Hashtbl.fold (fun _ l acc -> l :: acc) by_island [] in
    let groups = List.sort (fun a b -> compare (List.hd a).Unit_.island (List.hd b).Unit_.island) groups in
    let rec round gs acc =
      if List.for_all (( = ) []) gs then List.rev acc
      else
        let heads, tails =
          List.fold_right
            (fun g (hs, ts) ->
              match g with [] -> (hs, [] :: ts) | h :: t -> (h :: hs, t :: ts))
            gs ([], [])
        in
        round tails (List.rev_append heads acc)
    in
    round groups []
  in
  let kept_core_ids =
    List.filteri (fun i _ -> i < keep_cores) interleaved
    |> List.map (fun u -> u.Unit_.id)
  in
  let keep_unit u =
    (not (Unit_.is_general u)) || List.mem u.Unit_.id kept_core_ids
  in
  let kept = List.filter keep_unit (Array.to_list t.units) in
  (* Renumber unit ids so the id = array-index invariant survives, and
     remap links accordingly. *)
  let remap = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.add remap u.Unit_.id i) kept;
  let units = Array.of_list (List.mapi (fun i u -> { u with Unit_.id = i }) kept) in
  (* Memories of islands that lost every core are dropped; shared regions
     are scaled.  Memory ids are renumbered like unit ids. *)
  let kept_islands =
    Array.to_list units |> List.filter_map (fun u -> u.Unit_.island) |> List.sort_uniq compare
  in
  let keep_mem (m : Memory.t) =
    match m.Memory.island with None -> true | Some isl -> List.mem isl kept_islands
  in
  let kept_mems = List.filter keep_mem (Array.to_list t.memories) in
  let mem_remap = Hashtbl.create 16 in
  List.iteri (fun i m -> Hashtbl.add mem_remap m.Memory.id i) kept_mems;
  let memories =
    Array.of_list
      (List.mapi
         (fun i m ->
           let m = { m with Memory.id = i } in
           match m.Memory.level with
           | Memory.Local -> m
           | Memory.Cluster | Memory.Internal | Memory.External ->
               { m with
                 Memory.size_bytes = scale m.Memory.size_bytes;
                 cache =
                   Option.map
                     (fun c -> { c with Memory.cache_bytes = scale c.Memory.cache_bytes })
                     m.Memory.cache })
         kept_mems)
  in
  let hubs =
    Array.map (fun h -> { h with Hub.queue_capacity = scale h.Hub.queue_capacity }) t.hubs
  in
  let remap_link l =
    let u_ok u = Hashtbl.find_opt remap u in
    let m_ok m = Hashtbl.find_opt mem_remap m in
    match l.Link.kind with
    | Link.Access (u, m) -> (
        match (u_ok u, m_ok m) with
        | Some u', Some m' -> Some { l with Link.kind = Link.Access (u', m') }
        | _ -> None)
    | Link.Hierarchy (m1, m2) -> (
        match (m_ok m1, m_ok m2) with
        | Some a, Some b -> Some { l with Link.kind = Link.Hierarchy (a, b) }
        | _ -> None)
    | Link.Pipeline (u1, u2) -> (
        match (u_ok u1, u_ok u2) with
        | Some a, Some b -> Some { l with Link.kind = Link.Pipeline (a, b) }
        | _ -> None)
    | Link.Hub_edge (h, Link.U u) ->
        Option.map (fun u' -> { l with Link.kind = Link.Hub_edge (h, Link.U u') }) (u_ok u)
    | Link.Hub_edge (h, Link.M m) ->
        Option.map (fun m' -> { l with Link.kind = Link.Hub_edge (h, Link.M m') }) (m_ok m)
    | Link.Hub_edge (_, Link.H _) -> Some l
  in
  { t with
    name = Printf.sprintf "%s[%d/%d]" t.name keep_num keep_den;
    units;
    memories;
    hubs;
    links = List.filter_map remap_link t.links }

let pp fmt t =
  Format.fprintf fmt "LNIC %s (%s): %d units, %d memories, %d hubs, %d links@." t.name
    (arch_name t.arch)
    (Array.length t.units) (Array.length t.memories) (Array.length t.hubs)
    (List.length t.links);
  Array.iter (fun u -> Format.fprintf fmt "  %a@." Unit_.pp u) t.units;
  Array.iter (fun m -> Format.fprintf fmt "  %a@." Memory.pp m) t.memories;
  Array.iter (fun h -> Format.fprintf fmt "  %a@." Hub.pp h) t.hubs
