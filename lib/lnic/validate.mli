(** Structural well-formedness checks for LNIC graphs.

    Run on every graph Clara loads: a malformed NIC description would
    otherwise surface as a nonsense mapping much later. *)

type error = {
  what : string;    (** Which invariant failed. *)
  detail : string;
}

val errors : Graph.t -> error list
(** All violated invariants, empty when the graph is well-formed:
    - ids are dense and match array positions;
    - every link endpoint exists;
    - pipeline edges never decrease the stage index;
    - every general core reaches at least one memory of every level
      present in the graph's hierarchy chain;
    - memory hierarchy edges go from faster to slower levels;
    - per-island memories name an existing island;
    - parameter tables cover every op class;
    - eSwitch units are linked into the datapath and advertise a
      non-zero flow cache;
    - [Off_path] graphs carry a [Host_dma] (PCIe) hub. *)

val is_valid : Graph.t -> bool
val pp_error : Format.formatter -> error -> unit

val warnings : Graph.t -> string list
(** Non-fatal oddities worth surfacing when loading a NIC description:
    virtual calls no unit can execute (NFs using them will be
    unmappable), accelerators whose kind has no cost table, stateful
    accelerators with zero SRAM, and hubs with zero queue capacity. *)
