(** A BlueField-class off-path DPU instance (ROADMAP open item 1).

    Unlike every on-path target, the Arm cores here are {e not} on the
    packet path: a hardware eSwitch match-action engine forwards cached
    flows at line rate, and only flow-cache misses cross the internal
    fabric to software (see {!Graph.arch} and {!Graph.upcall_cycles}).
    Lookup-heavy NFs whose tables fit the eSwitch flow cache run almost
    entirely in hardware; payload-touching NFs pay an extra DMA transfer
    to reach the cores and are better served by an on-path part. *)

val create : ?cores:int -> unit -> Graph.t
(** Default: 8 Arm A72-class cores at 2.5 GHz, 2 threads each, plus the
    eSwitch and DOCA checksum/crypto engines. *)

val default : Graph.t
