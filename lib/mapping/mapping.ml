type placement = In_memory of int | In_accel of int

type t = {
  node_unit : int array;
  state_place : (string * placement) list;
  objective_cycles : float;
  ilp_nodes : int;
  ilp_vars : int;
  ilp_gap : float option;
}

type options = {
  disallowed_accels : Clara_lnic.Unit_.accel_kind list;
  pin_state : (string * Clara_lnic.Memory.level) list;
  node_limit : int;
  sharing : (string * Clara_analysis.Sharing.verdict) list;
}

let default_options =
  { disallowed_accels = []; pin_state = []; node_limit = 200_000; sharing = [] }

let unit_of_node t n = t.node_unit.(n)
let placement_of_state t s = List.assoc_opt s t.state_place

let pp lnic fmt t =
  let degraded =
    match t.ilp_gap with
    | None -> ""
    | Some g -> Format.asprintf ", node-limited, gap <= %.0f" g
  in
  Format.fprintf fmt "mapping (objective %.0f cycles, %d B&B nodes, %d vars%s)@."
    t.objective_cycles t.ilp_nodes t.ilp_vars degraded;
  Array.iteri
    (fun n u ->
      Format.fprintf fmt "  n%d -> %s@." n (Clara_lnic.Graph.unit_ lnic u).Clara_lnic.Unit_.name)
    t.node_unit;
  List.iter
    (fun (s, p) ->
      match p with
      | In_memory m ->
          Format.fprintf fmt "  state %s -> %s@." s
            (Clara_lnic.Graph.memory lnic m).Clara_lnic.Memory.name
      | In_accel u ->
          Format.fprintf fmt "  state %s -> %s (accel SRAM)@." s
            (Clara_lnic.Graph.unit_ lnic u).Clara_lnic.Unit_.name)
    t.state_place
