module I = Clara_ilp
module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module M = I.Model
module LE = I.Lin_expr

let obs = Clara_obs.Registry.default
let c_vars = Clara_obs.Registry.counter obs "mapping.ilp.vars"
let c_constraints = Clara_obs.Registry.counter obs "mapping.ilp.constraints"
let c_bb_nodes = Clara_obs.Registry.counter obs "mapping.ilp.bb_nodes"
let c_racy_states = Clara_obs.Registry.counter obs "mapping.sharing.racy_states"

let c_hardened =
  Clara_obs.Registry.counter obs "mapping.sharing.hardened_instrs"

(* State object a node touches (at most one, guaranteed by Build). *)
let node_state (n : D.Node.t) =
  match n.D.Node.kind with
  | D.Node.N_vcall v -> v.Ir.state
  | D.Node.N_compute is ->
      List.find_map
        (function
          | Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s) | Ir.Atomic_op (Ir.L_state s) ->
              Some s
          | _ -> None)
        is

(* Packet data region as seen from a unit: cluster memory while the packet
   fits the CTM threshold, external memory otherwise (§3.2). *)
let packet_region_for lnic (u : L.Unit_.t) ~packet_bytes =
  let reach = L.Graph.reachable_memories lnic ~unit_id:u.L.Unit_.id in
  let threshold = lnic.L.Graph.params.L.Params.packet_ctm_threshold in
  let pick level =
    List.find_opt (fun (m, _) -> m.L.Memory.level = level) reach
  in
  let choice =
    if int_of_float packet_bytes <= threshold then
      (match pick L.Memory.Cluster with None -> pick L.Memory.External | s -> s)
    else
      match pick L.Memory.External with None -> pick L.Memory.Cluster | s -> s
  in
  match (choice, reach) with
  | Some (m, _), _ -> m.L.Memory.id
  | None, (m, _) :: _ -> m.L.Memory.id
  | None, [] -> invalid_arg "Encode: unit reaches no memory"

let cost_ctx lnic (u : L.Unit_.t) ~sizes ~state_region ~state_footprint =
  {
    D.Cost.lnic;
    exec_unit = u;
    state_region;
    state_footprint;
    packet_region = packet_region_for lnic u ~packet_bytes:sizes.D.Cost.packet_bytes;
    sizes;
  }

let rat_of_cost c = I.Rat.of_int (int_of_float (Float.round c))

let rat_of_weight w =
  let scaled = int_of_float (Float.round (w *. 1000.)) in
  I.Rat.of_ints (max 0 scaled) 1000

let map_nf_exn ~(options : Mapping.options) ?dump_lp lnic (df : D.Graph.t) ~sizes ~prob =
  (* A state the sharing analysis judged racy gets hardened: its raw
     loads/stores are priced as atomics (the cost the program pays once
     the race is fixed), and it never moves into accelerator SRAM. *)
  let racy s =
    List.assoc_opt s options.Mapping.sharing = Some Clara_analysis.Sharing.Racy
  in
  List.iter
    (fun (_, v) ->
      if v = Clara_analysis.Sharing.Racy then
        Clara_obs.Metrics.incr c_racy_states)
    options.Mapping.sharing;
  let harden_node (n : D.Node.t) =
    match n.D.Node.kind with
    | D.Node.N_compute is
      when List.exists
             (function
               | (Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s)) -> racy s
               | _ -> false)
             is ->
        let is' =
          List.map
            (function
              | (Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s))
                when racy s ->
                  Clara_obs.Metrics.incr c_hardened;
                  Ir.Atomic_op (Ir.L_state s)
              | i -> i)
            is
        in
        { n with D.Node.kind = D.Node.N_compute is' }
    | _ -> n
  in
  let classes =
    L.Graph.placement_classes lnic
    |> List.filter (fun (c : L.Graph.placement_class) ->
           match c.L.Graph.rep.L.Unit_.kind with
           | L.Unit_.Accelerator k -> not (List.mem k options.Mapping.disallowed_accels)
           | L.Unit_.General_core _ -> true)
    |> Array.of_list
  in
  let nclasses = Array.length classes in
  let rep ci = classes.(ci).L.Graph.rep in
  let stage ci = (rep ci).L.Unit_.stage in
  let nodes = Array.map harden_node df.D.Graph.nodes in
  let weights = D.Flow.node_weights df ~prob in
  let states = D.Graph.states df in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> raise (Ir.Unknown_state s)
  in
  (* A node touching an undeclared state would otherwise surface as a
     generic "cannot run on any unit" (no y variable to pair with). *)
  Array.iter
    (fun (n : D.Node.t) ->
      match node_state n with
      | Some s when not (List.exists (fun o -> o.Ir.st_name = s) states) ->
          raise (Ir.Unknown_state s)
      | _ -> ())
    nodes;
  let state_entries s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> float_of_int o.Ir.st_entries
    | None -> 0.
  in
  let sizes =
    (* Resolve table sizes from the program itself unless the caller
       already provided them. *)
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          let v = sizes.D.Cost.state_entries s in
          if v > 0. then v else state_entries s) }
  in
  let shared_regions =
    Array.to_list lnic.L.Graph.memories
    |> List.filter (fun (m : L.Memory.t) ->
           match m.L.Memory.level with
           | L.Memory.Cluster | L.Memory.Internal | L.Memory.External -> true
           | L.Memory.Local -> false)
  in
  let touching s =
    Array.to_list nodes |> List.filter (fun n -> node_state n = Some s)
  in
  let accel_kinds =
    Array.to_list classes
    |> List.filter_map (fun (c : L.Graph.placement_class) ->
           match c.L.Graph.rep.L.Unit_.kind with
           | L.Unit_.Accelerator k -> Some k
           | L.Unit_.General_core _ -> None)
  in
  let params = lnic.L.Graph.params in
  (* Accelerator kinds that could host state s entirely. *)
  let pinned s = List.assoc_opt s options.Mapping.pin_state in
  let accel_options s =
    List.filter
      (fun k ->
        pinned s = None
        && (not (racy s))
        && footprint s <= L.Params.accel_sram params k
        && List.for_all
             (fun (n : D.Node.t) ->
               match n.D.Node.kind with
               | D.Node.N_vcall v -> L.Params.accel_vcall_cost params k v.Ir.vc <> None
               | D.Node.N_compute _ -> false)
             (touching s))
      accel_kinds
  in
  let mem_options s =
    List.filter
      (fun (m : L.Memory.t) ->
        footprint s <= m.L.Memory.size_bytes
        && match pinned s with None -> true | Some lvl -> m.L.Memory.level = lvl)
      shared_regions
  in
  let model = M.create () in
  let errors = ref [] in
  (* ---- state placement variables ---- *)
  let y_mem = Hashtbl.create 16 (* (state, mem id) -> var *) in
  let y_acc = Hashtbl.create 16 (* (state, accel kind) -> var *) in
  List.iter
    (fun (st : Ir.state_obj) ->
      let s = st.Ir.st_name in
      let mems = mem_options s and accs = accel_options s in
      if mems = [] && accs = [] then
        errors := Printf.sprintf "state '%s' fits no memory region" s :: !errors
      else begin
        let vars = ref [] in
        List.iter
          (fun (m : L.Memory.t) ->
            let v = M.add_var model ~name:(Printf.sprintf "y_%s_m%d" s m.L.Memory.id) M.Binary in
            Hashtbl.add y_mem (s, m.L.Memory.id) v;
            vars := v :: !vars)
          mems;
        List.iter
          (fun k ->
            let v = M.add_var model ~name:(Printf.sprintf "y_%s_acc" s) M.Binary in
            Hashtbl.add y_acc (s, k) v;
            vars := v :: !vars)
          accs;
        M.add_constraint model ~name:(Printf.sprintf "place_%s" s)
          (LE.sum (List.map LE.var !vars))
          M.Eq I.Rat.one
      end)
    states;
  (* ---- node assignment variables ---- *)
  (* For each node: list of (class idx, cost, var, mem option) *)
  let x_vars = Hashtbl.create 64 (* (node, class) -> var list (z's share class) *) in
  let objective = ref LE.zero in
  (* Worst candidate cost per node.  Exactly one choice var per node is
     set in any feasible assignment, so the sum of per-node maxima is an
     inclusive upper bound on the optimum — handed to branch & bound as
     an initial incumbent-style cutoff (static bounds made concrete in
     the ILP's own rational arithmetic). *)
  let node_worst : (int, I.Rat.t) Hashtbl.t = Hashtbl.create 64 in
  let add_obj n cost var =
    let r = I.Rat.mul (rat_of_weight weights.(n)) (rat_of_cost cost) in
    (match Hashtbl.find_opt node_worst n with
    | Some w when not (I.Rat.( < ) w r) -> ()
    | _ -> Hashtbl.replace node_worst n r);
    objective := LE.add !objective (LE.var ~coeff:r var)
  in
  Array.iter
    (fun (n : D.Node.t) ->
      let nid = n.D.Node.id in
      let choice_vars = ref [] in
      let record ci v =
        Hashtbl.add x_vars (nid, ci) v;
        choice_vars := v :: !choice_vars
      in
      (match node_state n with
      | None ->
          for ci = 0 to nclasses - 1 do
            let ctx =
              cost_ctx lnic (rep ci) ~sizes
                ~state_region:(fun _ -> invalid_arg "stateless")
                ~state_footprint:(fun _ -> 0)
            in
            match D.Cost.node_cycles ctx n with
            | None -> ()
            | Some c ->
                let v =
                  M.add_var model ~name:(Printf.sprintf "x_n%d_c%d" nid ci) M.Binary
                in
                record ci v;
                add_obj nid c v
          done
      | Some s ->
          for ci = 0 to nclasses - 1 do
            match (rep ci).L.Unit_.kind with
            | L.Unit_.General_core _ ->
                List.iter
                  (fun (m : L.Memory.t) ->
                    match Hashtbl.find_opt y_mem (s, m.L.Memory.id) with
                    | None -> ()
                    | Some yv -> (
                        let ctx =
                          cost_ctx lnic (rep ci) ~sizes
                            ~state_region:(fun _ -> m.L.Memory.id)
                            ~state_footprint:footprint
                        in
                        match D.Cost.node_cycles ctx n with
                        | None -> ()
                        | Some c ->
                            let zv =
                              M.add_var model
                                ~name:(Printf.sprintf "z_n%d_c%d_m%d" nid ci m.L.Memory.id)
                                M.Binary
                            in
                            record ci zv;
                            add_obj nid c zv;
                            (* z implies the state placement *)
                            M.add_constraint model
                              (LE.sub (LE.var zv) (LE.var yv))
                              M.Le I.Rat.zero))
                  shared_regions
            | L.Unit_.Accelerator k -> (
                match Hashtbl.find_opt y_acc (s, k) with
                | None -> ()
                | Some yv -> (
                    let ctx =
                      cost_ctx lnic (rep ci) ~sizes
                        ~state_region:(fun _ -> invalid_arg "accel state")
                        ~state_footprint:footprint
                    in
                    match D.Cost.node_cycles ctx n with
                    | None -> ()
                    | Some c ->
                        let v =
                          M.add_var model ~name:(Printf.sprintf "xa_n%d_c%d" nid ci)
                            M.Binary
                        in
                        record ci v;
                        add_obj nid c v;
                        M.add_constraint model
                          (LE.sub (LE.var v) (LE.var yv))
                          M.Le I.Rat.zero))
          done);
      if !choice_vars = [] then
        errors := Printf.sprintf "node n%d cannot run on any unit" nid :: !errors
      else
        M.add_constraint model ~name:(Printf.sprintf "assign_n%d" nid)
          (LE.sum (List.map LE.var !choice_vars))
          M.Eq I.Rat.one)
    nodes;
  (* ---- pipeline ordering along dataflow edges ---- *)
  let stage_expr nid =
    let e = ref LE.zero in
    for ci = 0 to nclasses - 1 do
      List.iter
        (fun v -> e := LE.add !e (LE.var ~coeff:(I.Rat.of_int (stage ci)) v))
        (Hashtbl.find_all x_vars (nid, ci))
    done;
    !e
  in
  List.iter
    (fun (t, k) ->
      M.add_constraint model ~name:(Printf.sprintf "pipe_%d_%d" t k)
        (LE.sub (stage_expr k) (stage_expr t))
        M.Ge I.Rat.zero)
    df.D.Graph.edges;
  (* ---- capacities ---- *)
  List.iter
    (fun (m : L.Memory.t) ->
      let terms =
        List.filter_map
          (fun (st : Ir.state_obj) ->
            Option.map
              (fun v -> LE.var ~coeff:(I.Rat.of_int (footprint st.Ir.st_name)) v)
              (Hashtbl.find_opt y_mem (st.Ir.st_name, m.L.Memory.id)))
          states
      in
      if terms <> [] then
        M.add_constraint model
          ~name:(Printf.sprintf "cap_m%d" m.L.Memory.id)
          (LE.sum terms) M.Le
          (I.Rat.of_int m.L.Memory.size_bytes))
    shared_regions;
  List.iter
    (fun k ->
      let terms =
        List.filter_map
          (fun (st : Ir.state_obj) ->
            Option.map
              (fun v -> LE.var ~coeff:(I.Rat.of_int (footprint st.Ir.st_name)) v)
              (Hashtbl.find_opt y_acc (st.Ir.st_name, k)))
          states
      in
      if terms <> [] then
        M.add_constraint model (LE.sum terms) M.Le
          (I.Rat.of_int (L.Params.accel_sram params k)))
    accel_kinds;
  match !errors with
  | e :: _ -> Error e
  | [] -> (
      M.set_objective model M.Minimize !objective;
      Clara_obs.Metrics.add c_vars (M.num_vars model);
      Clara_obs.Metrics.add c_constraints (M.num_constraints model);
      Option.iter (fun path -> I.Lp_format.write_file path model) dump_lp;
      let initial_bound =
        Hashtbl.fold (fun _ w acc -> I.Rat.add w acc) node_worst I.Rat.zero
      in
      match
        Clara_obs.Registry.span obs "solve" (fun () ->
            I.Branch_bound.solve ~node_limit:options.Mapping.node_limit
              ~initial_bound model)
      with
      | { I.Branch_bound.status = I.Branch_bound.Infeasible; _ } ->
          Error "mapping ILP infeasible (pipeline ordering vs capacities)"
      | { I.Branch_bound.status = I.Branch_bound.Unbounded; _ } ->
          Error "mapping ILP unbounded (encoding bug)"
      | { I.Branch_bound.status = I.Branch_bound.Node_limit; incumbent = false; _ } ->
          Error "ILP node limit exceeded with no feasible mapping"
      | { I.Branch_bound.status = I.Branch_bound.Optimal | I.Branch_bound.Node_limit;
          objective = obj; values; nodes = bb; gap; _ } ->
          Clara_obs.Metrics.add c_bb_nodes bb;
          (* Decode. *)
          let node_unit =
            Array.map
              (fun (n : D.Node.t) ->
                let nid = n.D.Node.id in
                let found = ref None in
                for ci = 0 to nclasses - 1 do
                  List.iter
                    (fun v ->
                      if I.Rat.equal values.(v) I.Rat.one then found := Some ci)
                    (Hashtbl.find_all x_vars (nid, ci))
                done;
                match !found with
                | Some ci -> (rep ci).L.Unit_.id
                | None -> failwith "Encode: node left unassigned (solver bug)")
              nodes
          in
          let state_place =
            List.map
              (fun (st : Ir.state_obj) ->
                let s = st.Ir.st_name in
                let mem_hit =
                  List.find_opt
                    (fun (m : L.Memory.t) ->
                      match Hashtbl.find_opt y_mem (s, m.L.Memory.id) with
                      | Some v -> I.Rat.equal values.(v) I.Rat.one
                      | None -> false)
                    shared_regions
                in
                match mem_hit with
                | Some m -> (s, Mapping.In_memory m.L.Memory.id)
                | None -> (
                    let acc_hit =
                      List.find_opt
                        (fun k ->
                          match Hashtbl.find_opt y_acc (s, k) with
                          | Some v -> I.Rat.equal values.(v) I.Rat.one
                          | None -> false)
                        accel_kinds
                    in
                    match acc_hit with
                    | Some k -> (
                        match L.Graph.find_accelerator lnic k with
                        | Some u -> (s, Mapping.In_accel u.L.Unit_.id)
                        | None -> failwith "Encode: accel vanished")
                    | None -> failwith "Encode: state left unplaced (solver bug)"))
              states
          in
          Ok
            {
              Mapping.node_unit;
              state_place;
              objective_cycles = I.Rat.to_float obj;
              ilp_nodes = bb;
              ilp_vars = M.num_vars model;
              (* A node-limited solve yields a degraded-but-usable
                 mapping; the gap tells the caller how far off it can
                 be.  [gap] is [None] on exact solves. *)
              ilp_gap = Option.map I.Rat.to_float gap;
            })

let map_nf ?(options = Mapping.default_options) ?dump_lp lnic df ~sizes ~prob =
  try map_nf_exn ~options ?dump_lp lnic df ~sizes ~prob
  with Ir.Unknown_state s ->
    Error
      (Printf.sprintf
         "NF references undeclared state '%s' (lint CLARA302 reports this \
          statically)"
         s)
