(** Mapping results: where each dataflow node runs and each state object
    lives (§3.4's Π and Γ decisions, decoded from the ILP solution). *)

type placement =
  | In_memory of int  (** Memory region id of the LNIC. *)
  | In_accel of int   (** Unit id of a stateful accelerator (flow cache). *)

type t = {
  node_unit : int array;  (** Node id → LNIC unit id (class representative). *)
  state_place : (string * placement) list;
  objective_cycles : float;
      (** Expected per-packet on-NIC compute cycles under the workload
          weights (hub/wire constants excluded; the predictor adds them). *)
  ilp_nodes : int;        (** Branch-and-bound nodes explored (0 = greedy). *)
  ilp_vars : int;
  ilp_gap : float option;
      (** [None] when the mapping is exact (or greedy).  [Some g] when
          the branch-and-bound node budget ran out: the mapping is the
          best incumbent found and its objective is within [g] cycles of
          the true optimum — degraded but usable. *)
}

type options = {
  disallowed_accels : Clara_lnic.Unit_.accel_kind list;
      (** Porting-strategy customization: e.g. forbid the flow cache to
          model the software match/action variant (Figures 1 & 3a). *)
  pin_state : (string * Clara_lnic.Memory.level) list;
      (** Force a state object to a memory level (another porting-strategy
          knob; also excludes it from accelerator SRAM). *)
  node_limit : int;       (** Branch-and-bound node budget. *)
  sharing : (string * Clara_analysis.Sharing.verdict) list;
      (** Per-state sharing verdicts from the analysis suite (empty =
          trust the program as written).  States judged [Racy] are
          hardened during encoding: their raw loads/stores are priced
          as atomics — the cost the program pays once the race is
          actually fixed — and accelerator SRAM placement is refused. *)
}

val default_options : options

val unit_of_node : t -> int -> int
val placement_of_state : t -> string -> placement option
val pp : Clara_lnic.Graph.t -> Format.formatter -> t -> unit
