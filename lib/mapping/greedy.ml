module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir

let map_nf_exn ~(options : Mapping.options) lnic (df : D.Graph.t) ~sizes ~prob =
  let states = D.Graph.states df in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> raise (Ir.Unknown_state s)
  in
  let state_entries s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> float_of_int o.Ir.st_entries
    | None -> 0.
  in
  let sizes =
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          let v = sizes.D.Cost.state_entries s in
          if v > 0. then v else state_entries s) }
  in
  (* First-fit state placement: fastest shared region with remaining
     capacity.  The greedy port never considers accelerator SRAM — using
     the flow cache is exactly the insight hand-tuning discovers. *)
  let shared =
    Array.to_list lnic.L.Graph.memories
    |> List.filter (fun (m : L.Memory.t) -> m.L.Memory.level <> L.Memory.Local)
    |> List.sort (fun (a : L.Memory.t) b -> compare a.L.Memory.read_cycles b.L.Memory.read_cycles)
  in
  let remaining = Hashtbl.create 8 in
  List.iter
    (fun (m : L.Memory.t) -> Hashtbl.replace remaining m.L.Memory.id m.L.Memory.size_bytes)
    shared;
  let state_place = ref [] in
  let placement_errors = ref [] in
  List.iter
    (fun (st : Ir.state_obj) ->
      let s = st.Ir.st_name in
      let fit =
        List.find_opt
          (fun (m : L.Memory.t) -> Hashtbl.find remaining m.L.Memory.id >= footprint s)
          shared
      in
      match fit with
      | Some m ->
          Hashtbl.replace remaining m.L.Memory.id
            (Hashtbl.find remaining m.L.Memory.id - footprint s);
          state_place := (s, Mapping.In_memory m.L.Memory.id) :: !state_place
      | None -> placement_errors := Printf.sprintf "state '%s' fits nowhere" s :: !placement_errors)
    states;
  match !placement_errors with
  | e :: _ -> Error e
  | [] -> (
      let state_region s =
        match List.assoc s !state_place with
        | Mapping.In_memory m -> m
        | Mapping.In_accel _ -> assert false
      in
      let classes =
        L.Graph.placement_classes lnic
        |> List.filter (fun (c : L.Graph.placement_class) ->
               match c.L.Graph.rep.L.Unit_.kind with
               | L.Unit_.Accelerator k -> not (List.mem k options.Mapping.disallowed_accels)
               | L.Unit_.General_core _ -> true)
      in
      let weights = D.Flow.node_weights df ~prob in
      let node_unit = Array.make (Array.length df.D.Graph.nodes) (-1) in
      let total = ref 0. in
      let min_stage = ref 0 in
      let errors = ref [] in
      let touches_state (n : D.Node.t) =
        match n.D.Node.kind with
        | D.Node.N_vcall v -> v.Ir.state <> None
        | D.Node.N_compute is ->
            List.exists
              (function
                | Ir.Load (Ir.L_state _) | Ir.Store (Ir.L_state _) | Ir.Atomic_op (Ir.L_state _) ->
                    true
                | _ -> false)
              is
      in
      List.iter
        (fun nid ->
          let n = D.Graph.node df nid in
          let candidates =
            List.filter_map
              (fun (c : L.Graph.placement_class) ->
                let u = c.L.Graph.rep in
                if u.L.Unit_.stage < !min_stage then None
                else if touches_state n && not (L.Unit_.is_general u) then
                  (* The greedy port placed all state in memory regions;
                     it never discovers that moving a table into an
                     accelerator's SRAM (the flow cache) is possible. *)
                  None
                else
                  let ctx =
                    {
                      D.Cost.lnic;
                      exec_unit = u;
                      state_region;
                      state_footprint = footprint;
                      packet_region =
                        Encode.packet_region_for lnic u
                          ~packet_bytes:sizes.D.Cost.packet_bytes;
                      sizes;
                    }
                  in
                  Option.map (fun cost -> (u, cost)) (D.Cost.node_cycles ctx n))
              classes
          in
          match List.sort (fun (_, a) (_, b) -> compare a b) candidates with
          | [] -> errors := Printf.sprintf "node n%d cannot run anywhere" nid :: !errors
          | (u, cost) :: _ ->
              node_unit.(nid) <- u.L.Unit_.id;
              min_stage := max !min_stage u.L.Unit_.stage;
              total := !total +. (weights.(nid) *. cost))
        (D.Graph.topo_order df);
      match !errors with
      | e :: _ -> Error e
      | [] ->
          Ok
            {
              Mapping.node_unit;
              state_place = List.rev !state_place;
              objective_cycles = !total;
              ilp_nodes = 0;
              ilp_vars = 0;
              ilp_gap = None;
            })

let map_nf ?(options = Mapping.default_options) lnic df ~sizes ~prob =
  try map_nf_exn ~options lnic df ~sizes ~prob
  with Ir.Unknown_state s ->
    Error
      (Printf.sprintf
         "NF references undeclared state '%s' (lint CLARA302 reports this \
          statically)"
         s)
