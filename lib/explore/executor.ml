(* Sweep-cell execution: a thin alias over the repo-wide Domain pool.

   The pool itself lives in Clara_util.Pool so nicsim's domain-parallel
   simulation and the sweep executor share one implementation; this
   module keeps the historical [Executor.map]/[Done]/[Failed] names
   that sweep.ml and the tests use. *)

include Clara_util.Pool
