(* Pareto post-processing over the sweep's three objectives:
   p99 latency (minimize), throughput (maximize), energy per packet
   (minimize).  Input order is preserved in the output so frontiers are
   deterministic regardless of which domain computed which cell. *)

type point = {
  p99_us : float;
  max_pps : float;
  nj_per_packet : float;
}

(* [a] dominates [b]: no worse on every objective, strictly better on
   at least one. *)
let dominates a b =
  a.p99_us <= b.p99_us && a.max_pps >= b.max_pps
  && a.nj_per_packet <= b.nj_per_packet
  && (a.p99_us < b.p99_us || a.max_pps > b.max_pps
      || a.nj_per_packet < b.nj_per_packet)

(* Non-dominated subset of [pts], input order kept.  O(n^2), fine for
   sweep-sized inputs. *)
let pareto pts =
  List.filter
    (fun (_, p) -> not (List.exists (fun (_, q) -> dominates q p) pts))
    pts

(* Best element by [cmp]; ties resolved by input order (first wins). *)
let best_by cmp = function
  | [] -> None
  | x :: rest ->
      Some (List.fold_left (fun acc y -> if cmp y acc < 0 then y else acc) x rest)
