(* Content-addressed cache keys.  A cell's key is the MD5 of a
   canonical preimage covering everything the predicted numbers depend
   on: the NF source *text* (not its name), a fingerprint of the LNIC
   model, the mapping options, the workload profile plus PRNG seed, and
   a code-version salt.  Editing one NF source invalidates exactly that
   NF's cells; renaming an NF or reordering spec axes invalidates
   nothing.

   [version_salt] must be bumped whenever the cost model, the mapping
   encoder, or the predictor changes meaning — it is the only guard
   against stale results across code changes that the LNIC fingerprint
   cannot see. *)

module L = Clara_lnic
module W = Clara_workload
module P = Clara_lnic.Params

let version_salt = "clara-explore-v1"

(* ---- canonical sub-strings ---------------------------------------- *)

let dist_repr = function
  | W.Dist.Fixed v -> Printf.sprintf "fixed:%d" v
  | W.Dist.Uniform (a, b) -> Printf.sprintf "uniform:%d:%d" a b
  | W.Dist.Bimodal (a, b, p) -> Printf.sprintf "bimodal:%d:%d:%g" a b p
  | W.Dist.Zipf (n, alpha) -> Printf.sprintf "zipf:%d:%g" n alpha

let profile_repr (p : W.Profile.t) =
  Printf.sprintf "tcp=%g;flows=%d;skew=%g;payload=%s;rate=%g;packets=%d;syn=%b"
    p.W.Profile.tcp_fraction p.W.Profile.flow_count p.W.Profile.flow_skew
    (dist_repr p.W.Profile.payload)
    p.W.Profile.rate_pps p.W.Profile.packets p.W.Profile.new_flow_syn

let options_repr (o : Clara_mapping.Mapping.options) =
  let accels =
    o.Clara_mapping.Mapping.disallowed_accels
    |> List.map L.Unit_.accel_name
    |> List.sort compare |> String.concat ","
  in
  let pins =
    o.Clara_mapping.Mapping.pin_state
    |> List.map (fun (s, lvl) -> s ^ ":" ^ L.Memory.level_name lvl)
    |> List.sort compare |> String.concat ","
  in
  let sharing =
    o.Clara_mapping.Mapping.sharing
    |> List.map (fun (s, v) -> s ^ ":" ^ Clara_analysis.Sharing.verdict_name v)
    |> List.sort compare |> String.concat ","
  in
  Printf.sprintf "accels=[%s];pins=[%s];node_limit=%d;sharing=[%s]" accels pins
    o.Clara_mapping.Mapping.node_limit sharing

let op_name = function
  | P.Alu -> "alu"
  | P.Mul -> "mul"
  | P.Div -> "div"
  | P.Fp -> "fp"
  | P.Move -> "move"
  | P.Branch -> "branch"
  | P.Hash -> "hash"
  | P.Load -> "load"
  | P.Store -> "store"
  | P.Atomic -> "atomic"
  | P.Call -> "call"

(* Structural fingerprint of the LNIC model: units, memories, link
   count and the scalar parameter-table entries.  Cost functions are
   closures and cannot be serialized — drift inside them is what
   [version_salt] is for. *)
let fingerprint_lnic (g : L.Graph.t) =
  let b = Buffer.create 512 in
  Buffer.add_string b g.L.Graph.name;
  Array.iter
    (fun u -> Buffer.add_string b (Format.asprintf "|%a" L.Unit_.pp u))
    g.L.Graph.units;
  Array.iter
    (fun m -> Buffer.add_string b (Format.asprintf "|%a" L.Memory.pp m))
    g.L.Graph.memories;
  Buffer.add_string b (Printf.sprintf "|hubs=%d|links=%d" (Array.length g.L.Graph.hubs)
       (List.length g.L.Graph.links));
  let p = g.L.Graph.params in
  Buffer.add_string b ("|params=" ^ p.P.pname);
  List.iter
    (fun (op, c) -> Buffer.add_string b (Printf.sprintf ";%s=%g" (op_name op) c))
    p.P.core_op_cycles;
  Buffer.add_string b
    (Printf.sprintf ";fpu=%g;ctm_thresh=%d" p.P.fpu_emulation_factor
       p.P.packet_ctm_threshold);
  List.iter
    (fun (k, bytes) ->
      Buffer.add_string b
        (Printf.sprintf ";sram.%s=%d" (L.Unit_.accel_name k) bytes))
    p.P.accel_sram_bytes;
  Buffer.contents b

(* ---- the key ------------------------------------------------------- *)

let canonical ~salt (cell : Spec.cell) =
  let nic_fp =
    match L.Targets.find cell.Spec.nic_name with
    | Some g -> fingerprint_lnic g
    | None -> "unknown:" ^ cell.Spec.nic_name
  in
  String.concat "\n"
    [ "clara-sweep-key";
      "version=" ^ version_salt;
      "salt=" ^ salt;
      "source-md5=" ^ Digest.to_hex (Digest.string cell.Spec.nf_source);
      "nic=" ^ nic_fp;
      "options=" ^ options_repr cell.Spec.options;
      "profile=" ^ profile_repr cell.Spec.profile;
      "seed=" ^ string_of_int cell.Spec.seed ]

let of_cell ~salt cell = Digest.to_hex (Digest.string (canonical ~salt cell))
