(* Declarative sweep specifications: a reproducible file (JSON) naming
   the NF x NIC x mapping-options x workload grid to evaluate, instead
   of a shell loop around the CLI.  [cells] expands the spec into a
   deterministic, stably-ordered list of point questions for the
   executor; the cache key (key.ml) is derived from cell *content*, so
   reordering axes in the file never invalidates cached results. *)

module W = Clara_workload
module M = Clara_mapping.Mapping
module J = Clara_util.Json

type cell = {
  id : int;               (* position in spec order; result ordering *)
  nf_name : string;
  nf_source : string;     (* resolved DSL text: cache key uses this *)
  nic_name : string;
  opt_name : string;
  options : M.options;
  wl_label : string;
  profile : W.Profile.t;
  seed : int;
}

type t = {
  name : string;
  salt : string;          (* user-chosen extra cache salt, "" default *)
  cells : cell list;
}

(* ---- axis combinators --------------------------------------------- *)

(* Cartesian product, left axis outermost (row-major). *)
let grid xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* Pointwise pairing; a length-1 axis broadcasts. *)
let zip xs ys =
  match (xs, ys) with
  | [ x ], ys -> Ok (List.map (fun y -> (x, y)) ys)
  | xs, [ y ] -> Ok (List.map (fun x -> (x, y)) xs)
  | xs, ys when List.length xs = List.length ys -> Ok (List.combine xs ys)
  | xs, ys ->
      Error
        (Printf.sprintf "zip: axis lengths differ (%d vs %d)" (List.length xs)
           (List.length ys))

(* ---- mapping-option variants -------------------------------------- *)

let option_variants =
  [ ("default", M.default_options);
    ( "no-flow-cache",
      { M.default_options with
        M.disallowed_accels = [ Clara_lnic.Unit_.Lookup; Clara_lnic.Unit_.Eswitch ] } );
    ( "no-accels",
      { M.default_options with
        M.disallowed_accels =
          [ Clara_lnic.Unit_.Parse; Clara_lnic.Unit_.Checksum;
            Clara_lnic.Unit_.Lookup; Clara_lnic.Unit_.Crypto;
            Clara_lnic.Unit_.Eswitch ] } ) ]

let options_of_name name = List.assoc_opt name option_variants

(* ---- workload axes ------------------------------------------------ *)

type workload_axes = {
  combine : [ `Grid | `Zip ];
  rates : float list;
  payloads : int list;
  flows : int list;
  tcps : float list;
  packets : int;
}

let default_axes =
  { combine = `Grid; rates = [ 60_000. ]; payloads = [ 300 ]; flows = [ 5_000 ];
    tcps = [ 0.8 ]; packets = 20_000 }

let label ~rate ~payload ~flows ~tcp =
  Printf.sprintf "r%g-p%d-f%d-t%g" rate payload flows tcp

let profile_of ~rate ~payload ~flows ~tcp ~packets =
  W.Profile.make ~payload:(W.Dist.Fixed payload) ~packets ~flow_count:flows
    ~rate_pps:rate ~tcp_fraction:tcp ()

(* Expand the four workload axes into labeled profiles. *)
let profiles (a : workload_axes) =
  let mk (((rate, payload), flows), tcp) =
    ( label ~rate ~payload ~flows ~tcp,
      profile_of ~rate ~payload ~flows ~tcp ~packets:a.packets )
  in
  match a.combine with
  | `Grid -> Ok (List.map mk (grid (grid (grid a.rates a.payloads) a.flows) a.tcps))
  | `Zip -> (
      match zip a.rates a.payloads with
      | Error e -> Error e
      | Ok rp -> (
          match zip rp a.flows with
          | Error e -> Error e
          | Ok rpf -> (
              match zip rpf a.tcps with
              | Error e -> Error e
              | Ok all -> Ok (List.map mk all))))

(* ---- programmatic construction ------------------------------------ *)

let make ?(name = "sweep") ?(salt = "") ?(seed = 42) ~nfs ~nics ~opts ~workloads () =
  let cells = ref [] in
  let id = ref 0 in
  List.iter
    (fun (nf_name, nf_source) ->
      List.iter
        (fun nic_name ->
          List.iter
            (fun (opt_name, options) ->
              List.iter
                (fun (wl_label, profile) ->
                  cells :=
                    { id = !id; nf_name; nf_source; nic_name; opt_name; options;
                      wl_label; profile; seed }
                    :: !cells;
                  incr id)
                workloads)
            opts)
        nics)
    nfs;
  { name; salt; cells = List.rev !cells }

(* ---- JSON parsing -------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* v = f x in
      Ok (v :: acc))
    (Ok []) xs
  |> Result.map List.rev

let field_list j key =
  match J.member key j with
  | None -> Ok None
  | Some (J.List l) -> Ok (Some l)
  | Some _ -> Error (Printf.sprintf "%S must be a list" key)

let num_list j key ~default of_num =
  match field_list j key with
  | Error e -> Error e
  | Ok None -> Ok default
  | Ok (Some l) ->
      collect
        (fun v ->
          match of_num v with
          | Some x -> Ok x
          | None -> Error (Printf.sprintf "%S entries must be numbers" key))
        l

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One NF entry: a corpus name, a path to a .clara file, or an object
   {"name": N, "source": DSL} / {"name": N, "file": PATH}. *)
let resolve_nf j =
  match j with
  | J.String s when Filename.check_suffix s ".clara" || String.contains s '/' -> (
      match read_file s with
      | source -> Ok (Filename.remove_extension (Filename.basename s), source)
      | exception Sys_error e -> Error ("cannot read NF source: " ^ e))
  | J.String s -> (
      match Clara_nfs.Corpus.find s with
      | Some e -> Ok (s, e.Clara_nfs.Corpus.source)
      | None ->
          Error
            (Printf.sprintf "unknown NF %S (corpus: %s)" s
               (String.concat " " Clara_nfs.Corpus.names)))
  | J.Obj _ -> (
      match J.member "name" j |> Option.map (fun v -> J.to_string_opt v) with
      | Some (Some name) -> (
          match (J.member "source" j, J.member "file" j) with
          | Some (J.String src), _ -> Ok (name, src)
          | _, Some (J.String path) -> (
              match read_file path with
              | source -> Ok (name, source)
              | exception Sys_error e -> Error ("cannot read NF source: " ^ e))
          | _ -> Error (Printf.sprintf "NF %S needs a \"source\" or \"file\" field" name))
      | _ -> Error "NF objects need a string \"name\" field")
  | _ -> Error "NF entries must be strings or objects"

let axes_of_json j =
  match J.member "workload" j with
  | None -> Ok default_axes
  | Some w ->
      let* combine =
        match J.member "combine" w with
        | None -> Ok `Grid
        | Some (J.String "grid") -> Ok `Grid
        | Some (J.String "zip") -> Ok `Zip
        | Some _ -> Error "workload.combine must be \"grid\" or \"zip\""
      in
      let* rates = num_list w "rate" ~default:default_axes.rates J.to_float_opt in
      let* payloads = num_list w "payload" ~default:default_axes.payloads J.to_int_opt in
      let* flows = num_list w "flows" ~default:default_axes.flows J.to_int_opt in
      let* tcps = num_list w "tcp" ~default:default_axes.tcps J.to_float_opt in
      let* packets =
        match J.member "packets" w with
        | None -> Ok default_axes.packets
        | Some v -> (
            match J.to_int_opt v with
            | Some p when p > 0 -> Ok p
            | _ -> Error "workload.packets must be a positive integer")
      in
      Ok { combine; rates; payloads; flows; tcps; packets }

let of_json j =
  let name =
    match J.member "name" j with Some (J.String s) -> s | _ -> "sweep"
  in
  let salt = match J.member "salt" j with Some (J.String s) -> s | _ -> "" in
  let seed =
    match J.member "seed" j with
    | Some v -> ( match J.to_int_opt v with Some s -> s | None -> 42)
    | None -> 42
  in
  let* nf_entries =
    match field_list j "nfs" with
    | Error e -> Error e
    | Ok (Some (_ :: _ as l)) -> Ok l
    | Ok _ -> Error "spec needs a non-empty \"nfs\" list"
  in
  let* nfs = collect resolve_nf nf_entries in
  let* nic_names =
    match field_list j "nics" with
    | Error e -> Error e
    | Ok (Some (_ :: _ as l)) ->
        collect
          (fun v ->
            match J.to_string_opt v with
            | Some s -> Ok s
            | None -> Error "\"nics\" entries must be strings")
          l
    | Ok _ -> Error "spec needs a non-empty \"nics\" list"
  in
  let* nics =
    collect
      (fun n ->
        match Clara_lnic.Targets.of_name n with
        | Ok _ -> Ok n
        | Error e -> Error e)
      nic_names
  in
  let* opts =
    match field_list j "options" with
    | Error e -> Error e
    | Ok None -> Ok [ ("default", M.default_options) ]
    | Ok (Some l) ->
        collect
          (fun v ->
            match J.to_string_opt v with
            | Some s -> (
                match options_of_name s with
                | Some o -> Ok (s, o)
                | None ->
                    Error
                      (Printf.sprintf "unknown options variant %S (expected %s)" s
                         (String.concat "|" (List.map fst option_variants))))
            | None -> Error "\"options\" entries must be strings")
          l
  in
  let* axes = axes_of_json j in
  let* workloads = profiles axes in
  Ok (make ~name ~salt ~seed ~nfs ~nics ~opts ~workloads ())

let of_string s =
  let* j = J.parse s in
  of_json j

let load path =
  match read_file path with
  | s -> of_string s
  | exception Sys_error e -> Error ("cannot read spec: " ^ e)
