(* On-disk, content-addressed result cache.  One JSON file per key
   under the cache directory; entries carry their own key so a file
   whose name and content disagree (truncated copy, hand edit) is
   rejected.  Every failure mode on the read side — missing file,
   unreadable file, parse error, key mismatch — degrades to a miss;
   the cache can always be deleted wholesale.  Writes go through a
   temp file + rename so a crashed sweep never leaves a half-written
   entry behind for the next run to trip over. *)

module J = Clara_util.Json

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let valid_key k =
  k <> "" && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) k

let path_of t key = Filename.concat t.dir (key ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [lookup t ~key] is the payload stored under [key], or [None]. *)
let lookup t ~key =
  if not (valid_key key) then None
  else
    let path = path_of t key in
    match read_file path with
    | exception Sys_error _ -> None
    | raw -> (
        match J.parse raw with
        | Error _ -> None
        | Ok doc -> (
            match (J.member "key" doc, J.member "payload" doc) with
            | Some (J.String k), Some payload when k = key -> Some payload
            | _ -> None))

let store t ~key payload =
  if not (valid_key key) then invalid_arg "Cache.store: malformed key";
  mkdir_p t.dir;
  let doc =
    J.Obj
      [ ("key", J.String key);
        ("version", J.String Key.version_salt);
        ("payload", payload) ]
  in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp-%s-%d" key (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         J.to_channel oc doc;
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (path_of t key)

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".json" then n + 1 else n)
        0 files
