(* Sweep orchestration: expand a Spec into cells, evaluate each cell
   through the full pipeline (parse -> coarsen -> dataflow -> ILP
   mapping -> latency/throughput/energy prediction) on a Domain pool,
   short-circuiting through the content-addressed cache, then
   post-process Pareto frontiers and per-NF best targets.

   The JSON report is deliberately free of anything volatile (wall
   clock, cache origins, domain count), so a sweep run with 1 domain
   and with N domains — or a cold and a warm cache — produces
   byte-identical JSON.  Timings, hit rates and utilization go to the
   text rendering and the lib/obs registry instead. *)

module W = Clara_workload
module L = Clara_lnic
module J = Clara_util.Json

let obs = Clara_obs.Registry.default

(* Coordinator-side counters: workers report per-job outcomes through
   the executor, and the coordinator bumps these once per sweep so the
   numbers are exact (worker-side increments would race). *)
let c_cells = Clara_obs.Registry.counter obs "explore.cells"
let c_hits = Clara_obs.Registry.counter obs "explore.cache.hits"
let c_misses = Clara_obs.Registry.counter obs "explore.cache.misses"
let c_computed = Clara_obs.Registry.counter obs "explore.jobs.computed"
let c_failed = Clara_obs.Registry.counter obs "explore.jobs.failed"
let c_pruned = Clara_obs.Registry.counter obs "explore.cells.pruned"
let c_busy = Clara_obs.Registry.counter obs "explore.worker.busy_ns"
let c_wall = Clara_obs.Registry.counter obs "explore.sweep.wall_ns"

(* ---- per-cell metrics --------------------------------------------- *)

type metrics = {
  mean_cycles : float;
  p50_cycles : float;
  p99_cycles : float;
  freq_mhz : int;
  mean_us : float;
  p99_us : float;
  max_pps : float;
  gbps : float;
  nj_per_packet : float;
  watts : float;
}

type status =
  | Computed of metrics
  | Failed of string
  | Pruned of string
      (* Skipped before simulation: the static bounds analysis proved
         the cell cannot meet the sweep's SLO (its latency lower bound
         already exceeds it).  Never cached — a later run without the
         SLO, or with a looser one, must still compute the cell. *)

type outcome = {
  cell : Spec.cell;
  status : status;
  cached : bool;          (* served from the result cache *)
}

type run_stats = {
  domains : int;
  cells : int;
  cache_hits : int;
  cache_misses : int;     (* cache enabled, entry absent or corrupt *)
  failed : int;
  pruned : int;           (* closed by the static-bounds SLO predicate *)
  wall_ns : int;
  busy_ns : int;
  utilization : float;
}

type report = {
  spec : Spec.t;
  outcomes : outcome array;  (* indexed by cell id: spec order *)
  frontier : int list;       (* cell ids, spec order *)
  best : (string * (int option * int option)) list;
      (* nf -> (best-latency cell, best-throughput cell) *)
  stats : run_stats;
}

let metrics_to_json m =
  J.Obj
    [ ("mean_cycles", J.Float m.mean_cycles);
      ("p50_cycles", J.Float m.p50_cycles);
      ("p99_cycles", J.Float m.p99_cycles);
      ("freq_mhz", J.Int m.freq_mhz);
      ("mean_us", J.Float m.mean_us);
      ("p99_us", J.Float m.p99_us);
      ("max_pps", J.Float m.max_pps);
      ("gbps", J.Float m.gbps);
      ("nj_per_packet", J.Float m.nj_per_packet);
      ("watts", J.Float m.watts) ]

let metrics_of_json j =
  let f k = Option.bind (J.member k j) J.to_float_opt in
  let i k = Option.bind (J.member k j) J.to_int_opt in
  match
    ( f "mean_cycles", f "p50_cycles", f "p99_cycles", i "freq_mhz", f "mean_us",
      f "p99_us", f "max_pps", f "gbps", f "nj_per_packet", f "watts" )
  with
  | ( Some mean_cycles, Some p50_cycles, Some p99_cycles, Some freq_mhz,
      Some mean_us, Some p99_us, Some max_pps, Some gbps, Some nj_per_packet,
      Some watts ) ->
      Some
        { mean_cycles; p50_cycles; p99_cycles; freq_mhz; mean_us; p99_us;
          max_pps; gbps; nj_per_packet; watts }
  | _ -> None

(* ---- evaluating one cell ------------------------------------------ *)

let evaluate (cell : Spec.cell) =
  match L.Targets.of_name cell.Spec.nic_name with
  | Error e -> Error e
  | Ok lnic -> (
      let profile = cell.Spec.profile in
      match
        Clara.analyze_for_profile ~options:cell.Spec.options lnic
          ~source:cell.Spec.nf_source ~profile
      with
      | Error e -> Error e
      | Ok a ->
          let trace = W.Trace.synthesize ~seed:(Int64.of_int cell.Spec.seed) profile in
          let p = Clara.predict a trace in
          let sizes = Clara.sizes_of_profile profile in
          let prob = Clara.prob_of_profile profile in
          let tp =
            Clara_predict.Throughput.estimate ~sizes ~prob lnic a.Clara.df
              a.Clara.mapping
          in
          let en =
            Clara_predict.Energy.estimate ~sizes ~prob
              ~rate_pps:profile.W.Profile.rate_pps lnic a.Clara.df a.Clara.mapping
          in
          let freq_mhz =
            match L.Graph.general_cores lnic with
            | u :: _ -> u.L.Unit_.freq_mhz
            | [] -> 1
          in
          let us cycles = cycles /. float_of_int freq_mhz in
          Ok
            { mean_cycles = p.Clara_predict.Latency.mean_cycles;
              p50_cycles = p.Clara_predict.Latency.p50_cycles;
              p99_cycles = p.Clara_predict.Latency.p99_cycles;
              freq_mhz;
              mean_us = us p.Clara_predict.Latency.mean_cycles;
              p99_us = us p.Clara_predict.Latency.p99_cycles;
              max_pps = tp.Clara_predict.Throughput.max_pps;
              gbps = tp.Clara_predict.Throughput.gbps_at_mean_packet;
              nj_per_packet = en.Clara_predict.Energy.nj_per_packet_total;
              watts = en.Clara_predict.Energy.watts_at_rate })

(* ---- the sweep ----------------------------------------------------- *)

let run ?(domains = 1) ?timeout_ms ?cache ?slo_p99_us (spec : Spec.t) =
  Clara_obs.Registry.span obs "sweep" @@ fun () ->
  let cells = Array.of_list spec.Spec.cells in
  let n = Array.length cells in
  (* Pre-simulation pruning: with an SLO, run the static bounds
     analysis once per distinct (nf, nic) pair on the coordinator (so
     worker domains never share mutable state) and close every cell
     whose latency {e lower} bound already exceeds the SLO — no
     placement or workload choice can save it. *)
  let prune_table =
    match slo_p99_us with
    | None -> []
    | Some slo ->
        Array.to_list cells
        |> List.map (fun (c : Spec.cell) ->
               ((c.Spec.nf_name, c.Spec.nic_name), c.Spec.nf_source))
        |> List.sort_uniq compare
        |> List.filter_map (fun ((nf, nic), source) ->
               match L.Targets.of_name nic with
               | Error _ -> None
               | Ok lnic -> (
                   match Clara_cir.Lower.lower_source source with
                   | exception _ -> None
                   | ir -> (
                       let ir = fst (Clara_cir.Patterns.run ir) in
                       let module B = Clara_analysis.Bounds in
                       let b = B.analyze ~lnic ir in
                       match B.find b "all" with
                       | Some row ->
                           let lo_us =
                             B.us_of b
                               (Clara_analysis.Interval.lo row.B.tb_total)
                           in
                           if lo_us > slo then
                             Some
                               ( (nf, nic),
                                 Printf.sprintf
                                   "static lower bound %.2f us exceeds SLO \
                                    p99 %.2f us"
                                   lo_us slo )
                           else None
                       | None -> None)))
  in
  let prune_of (c : Spec.cell) =
    List.assoc_opt (c.Spec.nf_name, c.Spec.nic_name) prune_table
  in
  (* Only successful results are cached: a Failed cell (parse error,
     infeasible mapping, timeout) is recomputed on the next run so a
     transient failure cannot poison the cache. *)
  let job i =
    let cell = cells.(i) in
    let key = Key.of_cell ~salt:spec.Spec.salt cell in
    let compute () =
      match evaluate cell with
      | Ok m ->
          Option.iter (fun c -> Cache.store c ~key (metrics_to_json m)) cache;
          (Computed m, false)
      | Error e -> (Failed e, false)
    in
    match prune_of cell with
    | Some reason -> (Pruned reason, false)
    | None -> (
    match cache with
    | None -> compute ()
    | Some c -> (
        match Cache.lookup c ~key with
        | Some payload -> (
            match metrics_of_json payload with
            | Some m -> (Computed m, true)
            | None -> compute () (* well-formed JSON, wrong shape: miss *))
        | None -> compute ()))
  in
  let results, xstats = Executor.map ~domains ?timeout_ms job n in
  let outcomes =
    Array.mapi
      (fun i r ->
        match r with
        | Executor.Done (status, cached) -> { cell = cells.(i); status; cached }
        | Executor.Failed e -> { cell = cells.(i); status = Failed e; cached = false })
      results
  in
  let count p = Array.fold_left (fun n o -> if p o then n + 1 else n) 0 outcomes in
  let cache_hits = count (fun o -> o.cached) in
  let failed = count (fun o -> match o.status with Failed _ -> true | _ -> false) in
  let pruned = count (fun o -> match o.status with Pruned _ -> true | _ -> false) in
  let cache_misses =
    if Option.is_some cache then n - cache_hits - pruned else 0
  in
  let stats =
    { domains = xstats.Executor.domains;
      cells = n;
      cache_hits;
      cache_misses;
      failed;
      pruned;
      wall_ns = xstats.Executor.wall_ns;
      busy_ns = xstats.Executor.busy_ns;
      utilization = Executor.utilization xstats }
  in
  Clara_obs.Metrics.add c_cells n;
  Clara_obs.Metrics.add c_hits cache_hits;
  Clara_obs.Metrics.add c_misses cache_misses;
  Clara_obs.Metrics.add c_computed (n - cache_hits - pruned);
  Clara_obs.Metrics.add c_failed failed;
  Clara_obs.Metrics.add c_pruned pruned;
  Clara_obs.Metrics.add c_busy stats.busy_ns;
  Clara_obs.Metrics.add c_wall stats.wall_ns;
  (* Post-processing over the successful cells only. *)
  let ok_points =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           match o.status with
           | Computed m ->
               Some
                 ( o.cell.Spec.id,
                   { Frontier.p99_us = m.p99_us; max_pps = m.max_pps;
                     nj_per_packet = m.nj_per_packet } )
           | Failed _ | Pruned _ -> None)
  in
  let frontier = Frontier.pareto ok_points |> List.map fst in
  let nf_names =
    List.fold_left
      (fun acc (c : Spec.cell) ->
        if List.mem c.Spec.nf_name acc then acc else c.Spec.nf_name :: acc)
      [] spec.Spec.cells
    |> List.rev
  in
  let metrics_of id =
    match outcomes.(id).status with
    | Computed m -> Some m
    | Failed _ | Pruned _ -> None
  in
  let best =
    List.map
      (fun nf ->
        let mine =
          List.filter_map
            (fun (id, _) ->
              if outcomes.(id).cell.Spec.nf_name = nf then
                Option.map (fun m -> (id, m)) (metrics_of id)
              else None)
            ok_points
        in
        let by_latency =
          Frontier.best_by (fun (_, a) (_, b) -> compare a.p99_us b.p99_us) mine
        in
        let by_tput =
          Frontier.best_by (fun (_, a) (_, b) -> compare b.max_pps a.max_pps) mine
        in
        (nf, (Option.map fst by_latency, Option.map fst by_tput)))
      nf_names
  in
  { spec; outcomes; frontier; best; stats }

(* ---- output: JSON (deterministic), text, CSV ---------------------- *)

let cell_to_json (o : outcome) =
  let c = o.cell in
  let p = c.Spec.profile in
  let base =
    [ ("id", J.Int c.Spec.id);
      ("nf", J.String c.Spec.nf_name);
      ("nic", J.String c.Spec.nic_name);
      ("options", J.String c.Spec.opt_name);
      ("workload", J.String c.Spec.wl_label);
      ("rate_pps", J.Float p.W.Profile.rate_pps);
      ("payload_mean", J.Float (W.Profile.mean_payload p));
      ("flows", J.Int p.W.Profile.flow_count);
      ("tcp_fraction", J.Float p.W.Profile.tcp_fraction);
      ("packets", J.Int p.W.Profile.packets);
      ("seed", J.Int c.Spec.seed) ]
  in
  match o.status with
  | Computed m ->
      J.Obj (base @ [ ("status", J.String "ok"); ("metrics", metrics_to_json m) ])
  | Failed e ->
      J.Obj (base @ [ ("status", J.String "failed"); ("error", J.String e) ])
  | Pruned reason ->
      J.Obj (base @ [ ("status", J.String "pruned"); ("reason", J.String reason) ])

let to_json (r : report) =
  J.Obj
    [ ("schema", J.String "clara-sweep-report-v1");
      ("spec", J.String r.spec.Spec.name);
      ("cells", J.List (Array.to_list r.outcomes |> List.map cell_to_json));
      ("frontier", J.List (List.map (fun id -> J.Int id) r.frontier));
      ( "best",
        J.Obj
          (List.map
             (fun (nf, (lat, tput)) ->
               let cellref = function
                 | Some id ->
                     J.Obj
                       [ ("cell", J.Int id);
                         ("nic", J.String r.outcomes.(id).cell.Spec.nic_name);
                         ("options", J.String r.outcomes.(id).cell.Spec.opt_name) ]
                 | None -> J.Null
               in
               (nf, J.Obj [ ("best_latency", cellref lat); ("best_throughput", cellref tput) ]))
             r.best) ) ]

let csv_header =
  "id,nf,nic,options,workload,seed,status,cached,mean_cycles,p50_cycles,p99_cycles,mean_us,p99_us,max_pps,gbps,nj_per_packet,watts,error"

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv (r : report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (o : outcome) ->
      let c = o.cell in
      let common =
        Printf.sprintf "%d,%s,%s,%s,%s,%d" c.Spec.id (csv_quote c.Spec.nf_name)
          c.Spec.nic_name c.Spec.opt_name c.Spec.wl_label c.Spec.seed
      in
      (match o.status with
      | Computed m ->
          Buffer.add_string buf
            (Printf.sprintf "%s,ok,%b,%g,%g,%g,%g,%g,%g,%g,%g,%g," common o.cached
               m.mean_cycles m.p50_cycles m.p99_cycles m.mean_us m.p99_us m.max_pps
               m.gbps m.nj_per_packet m.watts)
      | Failed e ->
          Buffer.add_string buf
            (Printf.sprintf "%s,failed,%b,,,,,,,,,%s" common o.cached (csv_quote e))
      | Pruned reason ->
          Buffer.add_string buf
            (Printf.sprintf "%s,pruned,%b,,,,,,,,,%s" common o.cached
               (csv_quote reason)));
      Buffer.add_char buf '\n')
    r.outcomes;
  Buffer.contents buf

let render fmt (r : report) =
  Format.fprintf fmt "sweep %s: %d cells@." r.spec.Spec.name r.stats.cells;
  Format.fprintf fmt "%-4s %-14s %-10s %-14s %-22s %-6s %12s %12s %12s %10s@." "id"
    "nf" "nic" "options" "workload" "state" "p99 us" "max pps" "nJ/pkt" "cached";
  Array.iter
    (fun (o : outcome) ->
      let c = o.cell in
      match o.status with
      | Computed m ->
          Format.fprintf fmt "%-4d %-14s %-10s %-14s %-22s %-6s %12.2f %12.0f %12.1f %10s@."
            c.Spec.id c.Spec.nf_name c.Spec.nic_name c.Spec.opt_name c.Spec.wl_label
            "ok" m.p99_us m.max_pps m.nj_per_packet
            (if o.cached then "hit" else "miss")
      | Failed e ->
          Format.fprintf fmt "%-4d %-14s %-10s %-14s %-22s %-6s %s@." c.Spec.id
            c.Spec.nf_name c.Spec.nic_name c.Spec.opt_name c.Spec.wl_label "FAILED" e
      | Pruned reason ->
          Format.fprintf fmt "%-4d %-14s %-10s %-14s %-22s %-6s %s@." c.Spec.id
            c.Spec.nf_name c.Spec.nic_name c.Spec.opt_name c.Spec.wl_label "PRUNED"
            reason)
    r.outcomes;
  if r.frontier <> [] then
    Format.fprintf fmt "@.pareto frontier (p99 latency / throughput / energy): cells %s@."
      (String.concat " " (List.map string_of_int r.frontier));
  List.iter
    (fun (nf, (lat, tput)) ->
      let show = function
        | Some id ->
            Printf.sprintf "%s/%s (cell %d)" r.outcomes.(id).cell.Spec.nic_name
              r.outcomes.(id).cell.Spec.opt_name id
        | None -> "-"
      in
      Format.fprintf fmt "best for %-14s latency: %-28s throughput: %s@." nf
        (show lat) (show tput))
    r.best;
  let s = r.stats in
  Format.fprintf fmt
    "@.%d cells: %d ok, %d failed, %d pruned | cache: %d hit / %d miss | %d domain%s, wall %.2f s, utilization %.0f%%@."
    s.cells (s.cells - s.failed - s.pruned) s.failed s.pruned s.cache_hits
    s.cache_misses s.domains
    (if s.domains = 1 then "" else "s")
    (float_of_int s.wall_ns /. 1e9)
    (100. *. s.utilization)
