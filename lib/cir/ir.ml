type size_expr =
  | S_const of int
  | S_payload
  | S_packet
  | S_header
  | S_state_entries of string
  | S_scaled of size_expr * float
  | S_plus of size_expr * int
  | S_opaque

type loc = L_local | L_packet | L_state of string

type guard =
  | G_proto of int
  | G_flag of int
  | G_table_hit of string
  | G_scan_match
  | G_count_exceeds
  | G_opaque
  | G_not of guard
  | G_or of guard * guard

type vcall_info = {
  vc : Clara_lnic.Params.vcall;
  size : size_expr;
  state : string option;
  state_reads : size_expr;
  state_writes : size_expr;
}

type instr =
  | Op of Clara_lnic.Params.op_class
  | Load of loc
  | Store of loc
  | Atomic_op of loc
  | Vcall of vcall_info

type terminator =
  | Jump of int
  | Cond of { guard : guard; then_ : int; else_ : int }
  | Loop of { body : int; exit : int; trip : size_expr }
  | Ret

type block = { bid : int; instrs : instr list; term : terminator }

type state_obj = {
  st_name : string;
  st_kind : Ast.state_kind;
  st_entries : int;
  st_entry_bytes : int;
}

type program = {
  prog_name : string;
  entry : int;
  blocks : block array;
  states : state_obj list;
}

exception Unknown_state of string

let () =
  Printexc.register_printer (function
    | Unknown_state s -> Some (Printf.sprintf "Ir.Unknown_state(%S)" s)
    | _ -> None)

let state_obj_opt p name = List.find_opt (fun s -> s.st_name = name) p.states

let state_obj p name =
  match state_obj_opt p name with
  | Some s -> s
  | None -> raise (Unknown_state name)

let state_bytes s = s.st_entries * s.st_entry_bytes

let successors = function
  | Jump b -> [ b ]
  | Cond { then_; else_; _ } -> [ then_; else_ ]
  | Loop { body; exit; _ } -> [ body; exit ]
  | Ret -> []

let block p bid =
  if bid < 0 || bid >= Array.length p.blocks then
    invalid_arg (Printf.sprintf "Ir.block: bad block id %d" bid)
  else p.blocks.(bid)

let vcall ?state ?(reads = S_const 0) ?(writes = S_const 0) vc size =
  Vcall { vc; size; state; state_reads = reads; state_writes = writes }

let instr_count p =
  Array.fold_left (fun acc b -> acc + List.length b.instrs) 0 p.blocks

let vcalls_of p =
  Array.to_list p.blocks
  |> List.concat_map (fun b ->
         List.filter_map (function Vcall v -> Some v | _ -> None) b.instrs)

let rec pp_size fmt = function
  | S_const n -> Format.pp_print_int fmt n
  | S_payload -> Format.pp_print_string fmt "payload"
  | S_packet -> Format.pp_print_string fmt "pkt"
  | S_header -> Format.pp_print_string fmt "hdr"
  | S_state_entries s -> Format.fprintf fmt "entries(%s)" s
  | S_scaled (e, k) -> Format.fprintf fmt "%g*%a" k pp_size e
  | S_plus (e, k) -> Format.fprintf fmt "(%a+%d)" pp_size e k
  | S_opaque -> Format.pp_print_string fmt "?"

(* Normalization used by printing and by path analysis: double negation,
   duplicate [G_or] arms, and the constant fold !opaque = opaque (an
   unrecognized predicate stays unrecognized under negation). *)
let rec simplify_guard = function
  | G_not g -> (
      match simplify_guard g with
      | G_not h -> h
      | G_opaque -> G_opaque
      | h -> G_not h)
  | G_or (a, b) ->
      let a = simplify_guard a and b = simplify_guard b in
      if a = b then a else G_or (a, b)
  | (G_proto _ | G_flag _ | G_table_hit _ | G_scan_match | G_count_exceeds | G_opaque)
    as g -> g

let rec pp_guard_raw fmt = function
  | G_proto k -> Format.fprintf fmt "proto==%d" k
  | G_flag k -> Format.fprintf fmt "flags&0x%x" k
  | G_table_hit s -> Format.fprintf fmt "hit(%s)" s
  | G_scan_match -> Format.pp_print_string fmt "scan-match"
  | G_count_exceeds -> Format.pp_print_string fmt "count-exceeds"
  | G_opaque -> Format.pp_print_string fmt "opaque"
  | G_not g -> Format.fprintf fmt "!(%a)" pp_guard_raw g
  | G_or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_guard_raw a pp_guard_raw b

let pp_guard fmt g = pp_guard_raw fmt (simplify_guard g)

let pp_loc fmt = function
  | L_local -> Format.pp_print_string fmt "local"
  | L_packet -> Format.pp_print_string fmt "pkt"
  | L_state s -> Format.fprintf fmt "state:%s" s

let pp_instr fmt = function
  | Op c -> Format.fprintf fmt "op.%s" (Clara_lnic.Params.op_name c)
  | Load l -> Format.fprintf fmt "load %a" pp_loc l
  | Store l -> Format.fprintf fmt "store %a" pp_loc l
  | Atomic_op l -> Format.fprintf fmt "atomic %a" pp_loc l
  | Vcall v ->
      Format.fprintf fmt "vcall %s(%a)%s"
        (Clara_lnic.Params.vcall_name v.vc)
        pp_size v.size
        (match v.state with None -> "" | Some s -> " @" ^ s)

let pp_terminator fmt = function
  | Jump b -> Format.fprintf fmt "jump b%d" b
  | Cond { guard; then_; else_ } ->
      Format.fprintf fmt "if %a then b%d else b%d" pp_guard guard then_ else_
  | Loop { body; exit; trip } ->
      Format.fprintf fmt "loop b%d x%a exit b%d" body pp_size trip exit
  | Ret -> Format.pp_print_string fmt "ret"

let pp_program fmt p =
  Format.fprintf fmt "cir %s (entry b%d)@." p.prog_name p.entry;
  List.iter
    (fun s ->
      Format.fprintf fmt "  state %s: %d x %dB@." s.st_name s.st_entries s.st_entry_bytes)
    p.states;
  Array.iter
    (fun b ->
      Format.fprintf fmt "  b%d:@." b.bid;
      List.iter (fun i -> Format.fprintf fmt "    %a@." pp_instr i) b.instrs;
      Format.fprintf fmt "    %a@." pp_terminator b.term)
    p.blocks
