type arg_type = A_packet | A_header | A_entry | A_int | A_state of Ast.state_kind list

type signature = { args : arg_type list; variadic_int : bool; result : Ast.typ }

let simple args result = { args; variadic_int = false; result }

let table =
  [ (* Packet inspection. *)
    ("parse_header", simple [ A_packet ] Ast.T_header);
    ("payload_len", simple [ A_packet ] Ast.T_int);
    ("packet_len", simple [ A_packet ] Ast.T_int);
    ("payload_byte", simple [ A_packet; A_int ] Ast.T_int);
    (* Checksums / crypto. *)
    ("checksum", simple [ A_packet ] Ast.T_int);
    ("checksum_update", simple [ A_header ] Ast.T_int);
    ("crypto", simple [ A_packet ] Ast.T_int);
    (* Tables. *)
    ("lookup", simple [ A_state [ Ast.S_map; Ast.S_array ]; A_int ] Ast.T_entry);
    ("update", simple [ A_state [ Ast.S_map; Ast.S_array ]; A_int; A_int ] Ast.T_int);
    ("lpm_match", simple [ A_state [ Ast.S_lpm ]; A_int ] Ast.T_entry);
    ("found", simple [ A_entry ] Ast.T_bool);
    ("entry_value", simple [ A_entry ] Ast.T_int);
    (* Raw state access: word-granularity read/write against a state
       object, bypassing the table engine.  [state_add] is the atomic
       fetch-add form; a [state_read]+[state_write] pair on shared state
       is the unsynchronized RMW the sharing lint flags. *)
    ("state_read", simple [ A_state [ Ast.S_map; Ast.S_array; Ast.S_counter ]; A_int ] Ast.T_int);
    ("state_write", simple [ A_state [ Ast.S_map; Ast.S_array; Ast.S_counter ]; A_int; A_int ] Ast.T_int);
    ("state_add", simple [ A_state [ Ast.S_map; Ast.S_array; Ast.S_counter ]; A_int; A_int ] Ast.T_int);
    (* Measurement / policing. *)
    ("meter", simple [ A_int ] Ast.T_int);
    ("count", simple [ A_state [ Ast.S_counter; Ast.S_map; Ast.S_array ]; A_int ] Ast.T_int);
    (* DPI. *)
    ("scan_payload", simple [ A_packet; A_int ] Ast.T_bool);
    (* Hashing: 1..4 int arguments. *)
    ("hash", { args = [ A_int ]; variadic_int = true; result = Ast.T_int });
    (* Verdicts. *)
    ("emit", simple [ A_packet ] Ast.T_int);
    ("drop", simple [ A_packet ] Ast.T_int) ]

let lookup name = List.assoc_opt name table
let names = List.map fst table

let header_fields =
  [ "src_ip"; "dst_ip"; "src_port"; "dst_port"; "proto"; "flags"; "len"; "ttl";
    "seq"; "ack"; "payload_len" ]

let is_header_field f = List.mem f header_fields
