(** The Clara Intermediate Representation (CIR, §3.3).

    Hardware-independent instructions grouped into basic blocks forming a
    CFG.  Framework calls appear as virtual calls ([Vcall]) that carry:
    - a {e symbolic size} (payload bytes, table entries, …) — component
      costs are functions over data size (§3.2, §4);
    - which state object they touch and how many reads/writes — the
      memory-placement decision Γ (§3.4) prices these accesses per region.

    Control flow is structured: conditional branches carry {e guards}
    describing the packet/state property they test, which is what lets the
    predictor resolve per-packet paths (§3.5); counted loops are
    represented by a [Loop] header with a symbolic trip count. *)

(** Symbolic sizes, resolved against a concrete packet + NF configuration
    at prediction time. *)
type size_expr =
  | S_const of int
  | S_payload            (** Payload bytes of the current packet. *)
  | S_packet             (** Total packet bytes. *)
  | S_header             (** Header bytes. *)
  | S_state_entries of string  (** Configured entries of a state object. *)
  | S_scaled of size_expr * float  (** ⌈scale·e⌉, e.g. entries per cache line. *)
  | S_plus of size_expr * int
  | S_opaque             (** Statically unknown (un-coarsened while loop). *)

(** Where a memory-touching instruction lands. *)
type loc =
  | L_local              (** Registers / per-thread local memory. *)
  | L_packet             (** Packet buffer (CTM, spilling to EMEM, §3.2). *)
  | L_state of string    (** A named state object; region chosen by Γ. *)

(** What a conditional branch tests; how the predictor resolves paths. *)
type guard =
  | G_proto of int       (** [hdr.proto == k]. *)
  | G_flag of int        (** [hdr.flags & k != 0] (e.g. SYN = 0x2). *)
  | G_table_hit of string  (** [found(lookup(t, …))]. *)
  | G_scan_match         (** DPI scan found a pattern. *)
  | G_count_exceeds      (** A counter/meter threshold test. *)
  | G_opaque             (** Unrecognized predicate. *)
  | G_not of guard
  | G_or of guard * guard

type vcall_info = {
  vc : Clara_lnic.Params.vcall;
  size : size_expr;
  state : string option;
  state_reads : size_expr;   (** Reads of [state] per invocation. *)
  state_writes : size_expr;
}

type instr =
  | Op of Clara_lnic.Params.op_class
  | Load of loc
  | Store of loc
  | Atomic_op of loc
  | Vcall of vcall_info

type terminator =
  | Jump of int
  | Cond of { guard : guard; then_ : int; else_ : int }
  | Loop of { body : int; exit : int; trip : size_expr }
      (** Structured counted loop: [body] runs [trip] times, then control
          reaches [exit].  Blocks inside the body that jump back to the
          loop header mark the end of one iteration. *)
  | Ret

type block = { bid : int; instrs : instr list; term : terminator }

type state_obj = {
  st_name : string;
  st_kind : Ast.state_kind;
  st_entries : int;
  st_entry_bytes : int;
}

type program = {
  prog_name : string;
  entry : int;
  blocks : block array;   (** Indexed by [bid]. *)
  states : state_obj list;
}

exception Unknown_state of string
(** A vcall or memory instruction names a state object the program never
    declared.  Raised instead of a bare [Not_found] so callers can
    surface the offending name (the cost-sanity lint pass reports the
    same condition statically as CLARA302). *)

val state_obj_opt : program -> string -> state_obj option

val state_obj : program -> string -> state_obj
(** @raise Unknown_state for an unknown state name. *)

val state_bytes : state_obj -> int
(** Total footprint: entries × entry size. *)

val successors : terminator -> int list
val block : program -> int -> block
(** @raise Invalid_argument on a bad block id. *)

val vcall :
  ?state:string -> ?reads:size_expr -> ?writes:size_expr ->
  Clara_lnic.Params.vcall -> size_expr -> instr
(** Convenience constructor; reads/writes default to 0. *)

val instr_count : program -> int
val vcalls_of : program -> vcall_info list

val simplify_guard : guard -> guard
(** Normalize a guard: eliminate double negation, collapse [G_or] with
    identical arms, and fold [G_not G_opaque] to [G_opaque] (negating an
    unrecognized predicate yields another unrecognized predicate).
    Idempotent; used by {!pp_guard} and the path-analysis lint pass. *)

val pp_size : Format.formatter -> size_expr -> unit

val pp_guard : Format.formatter -> guard -> unit
(** Prints the {!simplify_guard}-normal form. *)

(** Prints the guard exactly as constructed. *)
val pp_guard_raw : Format.formatter -> guard -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
