module P = Clara_lnic.Params

(* ------------------------------------------------------------------ *)
(* CFG builder                                                         *)

type proto_block = { mutable instrs : Ir.instr list (* reversed *); mutable term : Ir.terminator option }

type builder = { mutable blocks : proto_block array; mutable nblocks : int }

let new_block b =
  if b.nblocks = Array.length b.blocks then
    b.blocks <-
      Array.append b.blocks (Array.init (max 8 b.nblocks) (fun _ -> { instrs = []; term = None }));
  let id = b.nblocks in
  b.blocks.(id) <- { instrs = []; term = None };
  b.nblocks <- id + 1;
  id

let emit b bid i = b.blocks.(bid).instrs <- i :: b.blocks.(bid).instrs

let set_term b bid t =
  match b.blocks.(bid).term with
  | Some _ -> failwith "Lower: block already terminated"
  | None -> b.blocks.(bid).term <- Some t

let finalize b =
  Array.init b.nblocks (fun i ->
      { Ir.bid = i;
        instrs = List.rev b.blocks.(i).instrs;
        term = Option.value ~default:Ir.Ret b.blocks.(i).term })

(* ------------------------------------------------------------------ *)
(* Lowering environment                                                *)

(* What we statically know about a local variable: enough to extract
   guards and loop trip counts, nothing more. *)
type origin =
  | O_plain
  | O_const of int
  | O_lookup of string  (* result of lookup/lpm_match on this state *)
  | O_scan              (* result of scan_payload *)
  | O_count             (* result of count/meter *)
  | O_size of Ir.size_expr (* payload_len etc. *)

type env = {
  consts : (string * int) list;
  states : (string * Ast.state_decl) list;
  mutable vars : (string * (Ast.typ * origin)) list;
  b : builder;
}

let var_info env x = List.assoc_opt x env.vars

let set_var env x info =
  env.vars <- (x, info) :: List.remove_assoc x env.vars

let typ_of env (e : Ast.expr) : Ast.typ =
  (* Minimal re-typing for op-class selection; programs reaching lowering
     have already typechecked. *)
  let rec go = function
    | Ast.Int _ -> Ast.T_int
    | Ast.Float _ -> Ast.T_float
    | Ast.Bool _ -> Ast.T_bool
    | Ast.Ident x -> (
        match var_info env x with
        | Some (t, _) -> t
        | None -> Ast.T_int (* consts *))
    | Ast.Field _ -> Ast.T_int
    | Ast.Call (fn, _) -> (
        match Builtins.lookup fn with Some sg -> sg.Builtins.result | None -> Ast.T_int)
    | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b2) ->
        if go a = Ast.T_float || go b2 = Ast.T_float then Ast.T_float else Ast.T_int
    | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _) ->
        Ast.T_bool
    | Ast.Binop (_, _, _) -> Ast.T_int
    | Ast.Unop (Ast.Not, _) -> Ast.T_bool
    | Ast.Unop (Ast.Neg, a) -> go a
    | Ast.Unop (Ast.Bnot, _) -> Ast.T_int
  in
  go e

(* ------------------------------------------------------------------ *)
(* Static size evaluation (for trip counts and vcall sizes)            *)

let rec static_size env (e : Ast.expr) : Ir.size_expr option =
  match e with
  | Ast.Int n -> Some (Ir.S_const n)
  | Ast.Ident x -> (
      match List.assoc_opt x env.consts with
      | Some n -> Some (Ir.S_const n)
      | None -> (
          match var_info env x with
          | Some (_, O_const n) -> Some (Ir.S_const n)
          | Some (_, O_size s) -> Some s
          | _ -> None))
  | Ast.Call ("payload_len", _) -> Some Ir.S_payload
  | Ast.Call ("packet_len", _) -> Some Ir.S_packet
  | Ast.Binop (Ast.Add, a, b) -> (
      match (static_size env a, static_size env b) with
      | Some (Ir.S_const x), Some (Ir.S_const y) -> Some (Ir.S_const (x + y))
      | Some s, Some (Ir.S_const y) | Some (Ir.S_const y), Some s -> Some (Ir.S_plus (s, y))
      | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) -> (
      match (static_size env a, static_size env b) with
      | Some (Ir.S_const x), Some (Ir.S_const y) -> Some (Ir.S_const (x - y))
      | Some s, Some (Ir.S_const y) -> Some (Ir.S_plus (s, -y))
      | _ -> None)
  | Ast.Binop (Ast.Mul, a, b) -> (
      match (static_size env a, static_size env b) with
      | Some (Ir.S_const x), Some (Ir.S_const y) -> Some (Ir.S_const (x * y))
      | Some s, Some (Ir.S_const y) | Some (Ir.S_const y), Some s ->
          Some (Ir.S_scaled (s, float_of_int y))
      | _ -> None)
  | Ast.Binop (Ast.Div, a, b) -> (
      match (static_size env a, static_size env b) with
      | Some (Ir.S_const x), Some (Ir.S_const y) when y <> 0 -> Some (Ir.S_const (x / y))
      | Some s, Some (Ir.S_const y) when y <> 0 -> Some (Ir.S_scaled (s, 1. /. float_of_int y))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression lowering: emits cost-bearing instructions               *)

let binop_class typ (op : Ast.binop) : P.op_class =
  let fp = typ = Ast.T_float in
  match op with
  | Ast.Add | Ast.Sub -> if fp then P.Fp else P.Alu
  | Ast.Mul -> if fp then P.Fp else P.Mul
  | Ast.Div | Ast.Mod -> if fp then P.Fp else P.Div
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if fp then P.Fp else P.Alu
  | Ast.And | Ast.Or -> P.Alu
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> P.Alu

let rec lower_expr env bid (e : Ast.expr) : origin =
  match e with
  | Ast.Int n -> O_const n
  | Ast.Float _ | Ast.Bool _ -> O_plain
  | Ast.Ident x -> (
      match List.assoc_opt x env.consts with
      | Some n -> O_const n
      | None -> (
          match var_info env x with Some (_, o) -> o | None -> O_plain))
  | Ast.Field (_, _) ->
      (* Header fields live in local memory after parsing; a field read is
         a metadata move (§3.2: 2-5 cycles). *)
      emit env.b bid (Ir.Op P.Move);
      O_plain
  | Ast.Call (fn, args) -> lower_call env bid fn args
  | Ast.Binop (op, a, b) ->
      let _ = lower_expr env bid a in
      let _ = lower_expr env bid b in
      let t = typ_of env e in
      let t = if t = Ast.T_bool then (if typ_of env a = Ast.T_float then Ast.T_float else Ast.T_int) else t in
      emit env.b bid (Ir.Op (binop_class t op));
      O_plain
  | Ast.Unop (_, a) ->
      let _ = lower_expr env bid a in
      emit env.b bid (Ir.Op (if typ_of env a = Ast.T_float then P.Fp else P.Alu));
      O_plain

and lower_args env bid args = List.iter (fun a -> ignore (lower_expr env bid a)) args

and state_name = function
  | Ast.Ident n -> n
  | _ -> failwith "Lower: state argument must be a name"

(* A dangling state name in a builtin call is a typed error at lower
   time (typechecked sources never hit this; hand-built ASTs can). *)
and checked_state env arg =
  let st = state_name arg in
  if not (List.mem_assoc st env.states) then raise (Ir.Unknown_state st);
  st

and lower_call env bid fn args : origin =
  let size_of_arg i =
    match List.nth_opt args i with
    | Some a -> ( match static_size env a with Some s -> s | None -> Ir.S_opaque)
    | None -> Ir.S_opaque
  in
  match fn with
  | "parse_header" ->
      emit env.b bid (Ir.vcall P.V_parse_header Ir.S_header);
      O_plain
  | "payload_len" -> O_size Ir.S_payload
  | "packet_len" -> O_size Ir.S_packet
  | "payload_byte" ->
      lower_args env bid args;
      emit env.b bid (Ir.Load Ir.L_packet);
      O_plain
  | "checksum" ->
      emit env.b bid (Ir.vcall P.V_checksum Ir.S_packet);
      O_plain
  | "checksum_update" ->
      emit env.b bid (Ir.vcall P.V_checksum Ir.S_header);
      O_plain
  | "crypto" ->
      emit env.b bid (Ir.vcall P.V_crypto Ir.S_payload);
      O_plain
  | "lookup" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid
        (Ir.vcall ~state:st ~reads:(Ir.S_const 2) P.V_table_lookup
           (Ir.S_state_entries st));
      O_lookup st
  | "update" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid
        (Ir.vcall ~state:st ~reads:(Ir.S_const 1) ~writes:(Ir.S_const 1)
           P.V_table_update (Ir.S_state_entries st));
      O_plain
  | "lpm_match" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      (* Software match/action walks the rule set; reads are amortized
         over ~8 entries per memory burst. *)
      emit env.b bid
        (Ir.vcall ~state:st
           ~reads:(Ir.S_scaled (Ir.S_state_entries st, 0.125))
           P.V_lpm_lookup (Ir.S_state_entries st));
      O_lookup st
  | "found" | "entry_value" ->
      let o =
        match args with
        | [ Ast.Ident x ] -> ( match var_info env x with Some (_, o) -> o | None -> O_plain)
        | _ -> O_plain
      in
      emit env.b bid (Ir.Op P.Move);
      o
  | "meter" ->
      lower_args env bid args;
      emit env.b bid (Ir.vcall P.V_meter (Ir.S_const 1));
      O_count
  | "count" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid (Ir.vcall ~state:st P.V_flow_stats (Ir.S_const 1));
      emit env.b bid (Ir.Atomic_op (Ir.L_state st));
      O_count
  | "state_read" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid (Ir.Load (Ir.L_state st));
      O_plain
  | "state_write" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid (Ir.Store (Ir.L_state st));
      O_plain
  | "state_add" ->
      let st = checked_state env (List.hd args) in
      lower_args env bid (List.tl args);
      emit env.b bid (Ir.Atomic_op (Ir.L_state st));
      O_plain
  | "scan_payload" ->
      lower_args env bid (List.tl args);
      emit env.b bid (Ir.vcall P.V_payload_scan Ir.S_payload);
      O_scan
  | "hash" ->
      lower_args env bid args;
      emit env.b bid (Ir.Op P.Hash);
      O_plain
  | "emit" ->
      emit env.b bid (Ir.vcall P.V_emit Ir.S_packet);
      O_plain
  | "drop" ->
      emit env.b bid (Ir.vcall P.V_drop (Ir.S_const 1));
      O_plain
  | other ->
      ignore (size_of_arg 0);
      failwith (Printf.sprintf "Lower: unknown builtin '%s'" other)

(* ------------------------------------------------------------------ *)
(* Guard extraction                                                    *)

let rec guard_of env (e : Ast.expr) : Ir.guard =
  match e with
  | Ast.Binop (Ast.Eq, Ast.Field (_, "proto"), rhs)
  | Ast.Binop (Ast.Eq, rhs, Ast.Field (_, "proto")) -> (
      match static_size env rhs with
      | Some (Ir.S_const k) -> Ir.G_proto k
      | _ -> Ir.G_opaque)
  | Ast.Binop (Ast.Ne, Ast.Field (f, "proto"), rhs) ->
      Ir.G_not (guard_of env (Ast.Binop (Ast.Eq, Ast.Field (f, "proto"), rhs)))
  | Ast.Binop ((Ast.Ne | Ast.Gt), Ast.Binop (Ast.Band, Ast.Field (_, "flags"), rhs), Ast.Int 0)
    -> (
      match static_size env rhs with
      | Some (Ir.S_const k) -> Ir.G_flag k
      | _ -> Ir.G_opaque)
  | Ast.Binop (Ast.Eq, Ast.Binop (Ast.Band, Ast.Field (_, "flags"), rhs), Ast.Int 0) -> (
      match static_size env rhs with
      | Some (Ir.S_const k) -> Ir.G_not (Ir.G_flag k)
      | _ -> Ir.G_opaque)
  | Ast.Call ("found", [ arg ]) -> (
      match arg with
      | Ast.Ident x -> (
          match var_info env x with
          | Some (_, O_lookup st) -> Ir.G_table_hit st
          | _ -> Ir.G_opaque)
      | Ast.Call (("lookup" | "lpm_match"), Ast.Ident st :: _) -> Ir.G_table_hit st
      | _ -> Ir.G_opaque)
  | Ast.Call ("scan_payload", _) -> Ir.G_scan_match
  | Ast.Ident x -> (
      match var_info env x with
      | Some (_, O_scan) -> Ir.G_scan_match
      | Some (_, O_lookup st) -> Ir.G_table_hit st
      | _ -> Ir.G_opaque)
  | Ast.Binop ((Ast.Gt | Ast.Ge), lhs, _) -> (
      match lhs with
      | Ast.Call (("count" | "meter"), _) -> Ir.G_count_exceeds
      | Ast.Ident x -> (
          match var_info env x with
          | Some (_, O_count) -> Ir.G_count_exceeds
          | _ -> Ir.G_opaque)
      | _ -> Ir.G_opaque)
  | Ast.Unop (Ast.Not, e) -> Ir.G_not (guard_of env e)
  | Ast.Binop (Ast.And, a, _) ->
      (* Approximate a conjunction by its first recognizable conjunct. *)
      guard_of env a
  | Ast.Binop (Ast.Or, a, b) -> (
      match (guard_of env a, guard_of env b) with
      | Ir.G_opaque, _ | _, Ir.G_opaque -> Ir.G_opaque
      | ga, gb -> Ir.G_or (ga, gb))
  | _ -> Ir.G_opaque

(* ------------------------------------------------------------------ *)
(* Trip count extraction for for-loops                                 *)

let trip_count env x init cond step : Ir.size_expr =
  let init_s = static_size env init in
  let bound_s =
    match cond with
    | Ast.Binop (Ast.Lt, Ast.Ident v, bound) when v = x -> static_size env bound
    | Ast.Binop (Ast.Le, Ast.Ident v, bound) when v = x -> (
        match static_size env bound with
        | Some (Ir.S_const k) -> Some (Ir.S_const (k + 1))
        | Some s -> Some (Ir.S_plus (s, 1))
        | None -> None)
    | _ -> None
  in
  let step_c =
    match step with
    | Ast.Binop (Ast.Add, Ast.Ident v, Ast.Int c) when v = x && c > 0 -> Some c
    | Ast.Binop (Ast.Add, Ast.Int c, Ast.Ident v) when v = x && c > 0 -> Some c
    | _ -> None
  in
  match (init_s, bound_s, step_c) with
  | Some (Ir.S_const i), Some (Ir.S_const b), Some c ->
      Ir.S_const (if b > i then (b - i + c - 1) / c else 0)
  | Some (Ir.S_const 0), Some s, Some 1 -> s
  | Some (Ir.S_const i), Some s, Some c ->
      Ir.S_scaled (Ir.S_plus (s, -i), 1. /. float_of_int c)
  | _ -> Ir.S_opaque

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)

(* Lower a block of statements starting in [bid]; returns the block id
   where control continues (never terminated), or None if all paths
   returned. *)
let rec lower_block env bid (stmts : Ast.block) : int option =
  match stmts with
  | [] -> Some bid
  | s :: rest -> (
      match lower_stmt env bid s with
      | Some bid' -> lower_block env bid' rest
      | None ->
          (* Unreachable code after return: lower it into a dead block to
             keep costs conservative, then discard. *)
          if rest <> [] then ignore (lower_block env (new_block env.b) rest);
          None)

and lower_stmt env bid (s : Ast.stmt) : int option =
  match s with
  | Ast.Var (x, e, _) ->
      let o = lower_expr env bid e in
      emit env.b bid (Ir.Op P.Move);
      let o = match e with Ast.Int n -> O_const n | _ -> o in
      set_var env x (typ_of env e, o);
      Some bid
  | Ast.Assign (x, e, _) ->
      let o = lower_expr env bid e in
      emit env.b bid (Ir.Op P.Move);
      (match var_info env x with
      | Some (t, _) -> set_var env x (t, o)
      | None -> set_var env x (typ_of env e, o));
      Some bid
  | Ast.Field_assign (_, _, e, _) ->
      ignore (lower_expr env bid e);
      (* Header modification: a metadata move. *)
      emit env.b bid (Ir.Op P.Move);
      Some bid
  | Ast.Expr (e, _) ->
      ignore (lower_expr env bid e);
      Some bid
  | Ast.Return _ ->
      set_term env.b bid Ir.Ret;
      None
  | Ast.If (cond, then_b, else_b, _) -> (
      let guard = guard_of env cond in
      ignore (lower_expr env bid cond);
      emit env.b bid (Ir.Op P.Branch);
      let tb = new_block env.b in
      let eb = new_block env.b in
      set_term env.b bid (Ir.Cond { guard; then_ = tb; else_ = eb });
      let t_end = lower_block env tb then_b in
      let e_end =
        match else_b with
        | None -> Some eb
        | Some stmts -> lower_block env eb stmts
      in
      match (t_end, e_end) with
      | None, None -> None
      | Some b1, None ->
          let join = new_block env.b in
          set_term env.b b1 (Ir.Jump join);
          Some join
      | None, Some b2 ->
          let join = new_block env.b in
          set_term env.b b2 (Ir.Jump join);
          Some join
      | Some b1, Some b2 ->
          let join = new_block env.b in
          set_term env.b b1 (Ir.Jump join);
          set_term env.b b2 (Ir.Jump join);
          Some join)
  | Ast.While (cond, body, _) -> (
      (* Header evaluates the condition each iteration. *)
      let header = new_block env.b in
      set_term env.b bid (Ir.Jump header);
      ignore (lower_expr env header cond);
      emit env.b header (Ir.Op P.Branch);
      let body_b = new_block env.b in
      let exit_b = new_block env.b in
      set_term env.b header (Ir.Loop { body = body_b; exit = exit_b; trip = Ir.S_opaque });
      (match lower_block env body_b body with
      | Some e -> set_term env.b e (Ir.Jump header)
      | None -> ());
      Some exit_b)
  | Ast.For (x, init, cond, step, body, _) -> (
      let trip = trip_count env x init cond step in
      ignore (lower_expr env bid init);
      emit env.b bid (Ir.Op P.Move);
      set_var env x (Ast.T_int, O_plain);
      let header = new_block env.b in
      set_term env.b bid (Ir.Jump header);
      let body_b = new_block env.b in
      let exit_b = new_block env.b in
      set_term env.b header (Ir.Loop { body = body_b; exit = exit_b; trip });
      match lower_block env body_b body with
      | Some e ->
          (* Per-iteration bookkeeping: step + condition check. *)
          ignore (lower_expr env e step);
          emit env.b e (Ir.Op P.Move);
          ignore (lower_expr env e cond);
          emit env.b e (Ir.Op P.Branch);
          set_term env.b e (Ir.Jump header);
          Some exit_b
      | None -> Some exit_b)

let lower (p : Ast.program) : Ir.program =
  let b = { blocks = Array.init 8 (fun _ -> { instrs = []; term = None }); nblocks = 0 } in
  let env =
    { consts = p.consts;
      states = List.map (fun s -> (s.Ast.s_name, s)) p.states;
      vars = [ (p.handler.Ast.h_packet, (Ast.T_packet, O_plain)) ];
      b }
  in
  let entry = new_block b in
  (match lower_block env entry p.handler.Ast.h_body with
  | Some last -> set_term b last Ir.Ret
  | None -> ());
  let states =
    List.map
      (fun (s : Ast.state_decl) ->
        { Ir.st_name = s.s_name;
          st_kind = s.s_kind;
          st_entries = s.s_entries;
          st_entry_bytes = s.s_entry_bytes })
      p.states
  in
  { Ir.prog_name = p.nf_name; entry; blocks = finalize b; states }

let lower_source src =
  let ast = Parser.parse src in
  Typecheck.check_exn ast;
  lower ast
