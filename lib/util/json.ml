type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that round-trips: parse-back must give the
   same float, or cached results would drift by a ulp-scale error on
   every store/load cycle.  Most values fit the compact %g form. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let short = Printf.sprintf "%.6g" f in
    if float_of_string short = f then short
    else
      let mid = Printf.sprintf "%.15g" f in
      if float_of_string mid = f then mid else Printf.sprintf "%.17g" f

let to_string ?(pretty = true) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            emit (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let to_channel ?pretty oc t = output_string oc (to_string ?pretty t)

(* ---- parsing ------------------------------------------------------ *)

(* Recursive-descent parser for the subset we emit (plus standard JSON
   escapes).  Numbers without '.', 'e' or 'E' that fit in an int become
   [Int]; everything else numeric becomes [Float].  Errors carry the
   byte offset so a corrupted cache entry or a bad sweep spec points at
   the problem. *)

exception Parse_error of string * int

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    (* Encode one code point; surrogate pairs are handled by the caller. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 let cp =
                   if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                      && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     advance ();
                     advance ();
                     let lo = hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                     else fail "invalid low surrogate"
                   end
                   else cp
                 in
                 utf8_add buf cp
             | c -> fail (Printf.sprintf "invalid escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer overflow: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

(* ---- accessors ---------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
