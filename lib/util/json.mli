(** Minimal JSON emitter and parser, for machine-readable reports,
    sweep-spec files and the on-disk result cache. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float     (** NaN/infinities are emitted as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Valid JSON; strings are escaped per RFC 8259.  [pretty] (default
    true) indents with two spaces. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

exception Parse_error of string * int
(** Message and byte offset. *)

val parse_exn : string -> t
(** Parse one JSON value (with optional surrounding whitespace); raises
    [Parse_error].  Numbers without a fraction or exponent that fit in
    an OCaml [int] parse as [Int], all others as [Float]. *)

val parse : string -> (t, string) result
(** [parse_exn] with the error rendered as ["JSON parse error at byte
    %d: %s"]. *)

(** {2 Accessors} — shallow, total helpers for picking spec/cache
    fields apart. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    non-objects. *)

val to_int_opt : t -> int option
(** [Int], or [Float] with an integral value. *)

val to_float_opt : t -> float option
(** [Float], or [Int] widened. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
