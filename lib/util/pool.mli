(** OCaml 5 Domain worker pool: run [n] indexed jobs on up to
    [domains] domains, with per-job fault isolation and deterministic
    result ordering.

    This is the single pool implementation shared by [lib/explore]
    (sweep cells) and [lib/nicsim] (domain-parallel simulation shards).
    Results are delivered in job-index order regardless of scheduling,
    so output is reproducible across domain counts. *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; message from the exception *)

type stats = {
  domains : int;  (** workers actually spawned (clamped to [1..n]) *)
  jobs : int;
  busy_ns : int;  (** summed over workers: wall time inside jobs *)
  wall_ns : int;
}

val map :
  ?domains:int -> ?timeout_ms:int -> (int -> 'a) -> int -> 'a outcome array * stats
(** [map ~domains f n] evaluates [f i] for [i = 0..n-1] on a pool of
    domains (default 1) and returns the outcomes in index order.  A job
    that raises becomes [Failed] for its slot only.  [timeout_ms]
    bounds each job's *reported* latency cooperatively: an over-budget
    job is marked [Failed] and its eventual result dropped (domains
    cannot be killed, so its CPU time is still spent).
    @raise Invalid_argument on a negative job count. *)

val utilization : stats -> float
(** Fraction of [domains * wall] spent inside jobs, in [0, 1]. *)
