(* OCaml 5 Domain-based worker pool with per-job isolation.

   This is the one pool implementation in the repo: lib/explore's sweep
   executor and lib/nicsim's domain-parallel simulation both drive it.

   Jobs are indices 0..n-1 pulled from a shared mutex-guarded deque;
   each worker runs one job at a time, and everything a job raises is
   caught and recorded as [Failed] for that slot only — one bad cell
   never kills the batch.  Results land in a slot-per-job array, so the
   output ordering is the input ordering no matter how the scheduler
   interleaved the work.

   Timeouts are cooperative: domains cannot be killed, so a monitor in
   the coordinating domain marks an over-budget slot [Failed] (first
   writer wins — the worker's eventual result is dropped) and the pool
   still joins every worker before returning.  That bounds *reporting*
   latency of a pathological cell, not its CPU time; a genuinely
   non-terminating job would still hang the join, which no job in this
   codebase is. *)

type 'a outcome =
  | Done of 'a
  | Failed of string

type stats = {
  domains : int;
  jobs : int;
  busy_ns : int;          (* summed over workers: time inside jobs *)
  wall_ns : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The shared job deque: plain FIFO under a mutex.  Workers pop from
   the front; [n] jobs and <= 16 workers make contention irrelevant. *)
type deque = { q : int Queue.t; mu : Mutex.t }

let pop_front d =
  Mutex.lock d.mu;
  let r = Queue.take_opt d.q in
  Mutex.unlock d.mu;
  r

let describe_exn = function
  | Failure m -> m
  | Invalid_argument m -> "invalid argument: " ^ m
  | e -> Printexc.to_string e

let map ?(domains = 1) ?timeout_ms f n =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  let domains = max 1 (min domains (max 1 n)) in
  let t_start = now_ns () in
  let deque = { q = Queue.create (); mu = Mutex.create () } in
  for i = 0 to n - 1 do
    Queue.add i deque.q
  done;
  let results : 'a outcome option array = Array.make n None in
  let started : int array = Array.make n 0 in (* ns timestamp, 0 = not yet *)
  let res_mu = Mutex.create () in
  let busy_ns = Atomic.make 0 in
  let outstanding = Atomic.make n in
  (* First writer wins: the worker that finished the job, or the
     timeout monitor that gave up on it. *)
  let deliver i r =
    Mutex.lock res_mu;
    (if Option.is_none results.(i) then begin
       results.(i) <- Some r;
       Atomic.decr outstanding
     end);
    Mutex.unlock res_mu
  in
  let worker () =
    let rec loop () =
      match pop_front deque with
      | None -> ()
      | Some i ->
          let t0 = now_ns () in
          Mutex.lock res_mu;
          started.(i) <- t0;
          Mutex.unlock res_mu;
          let r = try Done (f i) with e -> Failed (describe_exn e) in
          let dt = now_ns () - t0 in
          ignore (Atomic.fetch_and_add busy_ns dt);
          deliver i r;
          loop ()
    in
    loop ()
  in
  let workers = List.init domains (fun _ -> Domain.spawn worker) in
  (match timeout_ms with
  | None -> ()
  | Some budget_ms ->
      let budget_ns = budget_ms * 1_000_000 in
      (* Poll while any slot is unfilled; workers that popped a job
         record its start time, so an over-budget running job can be
         marked Failed without waiting for it. *)
      while Atomic.get outstanding > 0 do
        Unix.sleepf 0.01;
        let now = now_ns () in
        for i = 0 to n - 1 do
          let overdue =
            Mutex.lock res_mu;
            let o = Option.is_none results.(i) && started.(i) > 0 && now - started.(i) > budget_ns in
            Mutex.unlock res_mu;
            o
          in
          if overdue then
            deliver i
              (Failed (Printf.sprintf "timeout: exceeded %d ms budget" budget_ms))
        done
      done);
  List.iter Domain.join workers;
  let wall_ns = now_ns () - t_start in
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> Failed "pool: job was never scheduled (internal error)")
      results
  in
  (results, { domains; jobs = n; busy_ns = Atomic.get busy_ns; wall_ns })

let utilization s =
  if s.wall_ns <= 0 || s.domains <= 0 then 0.
  else
    Float.min 1.
      (float_of_int s.busy_ns /. (float_of_int s.wall_ns *. float_of_int s.domains))
