(** Array-backed binary min-heap of ints.

    Allocation-free after construction (amortized): the backing array
    doubles as needed and is reused across pushes/pops.  The nicsim
    engine keys it on packet completion times so that out-of-order
    completions retire as soon as simulated time passes them. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the initial backing-array size (default 16). *)

val length : t -> int
val is_empty : t -> bool
val push : t -> int -> unit

val min_elt : t -> int
(** @raise Invalid_argument when empty. *)

val pop : t -> int
(** Removes and returns the minimum.
    @raise Invalid_argument when empty. *)

val clear : t -> unit
