(* Array-backed binary min-heap of ints.  Used by the nicsim engine to
   retire in-flight packets by completion time: multi-threaded
   completions are not monotone, so a FIFO overstates queue depth. *)

type t = { mutable data : int array; mutable size : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i) < h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.data.(l) < h.data.(!smallest) then smallest := l;
  if r < h.size && h.data.(r) < h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    let grown = Array.make (2 * h.size) 0 in
    Array.blit h.data 0 grown 0 h.size;
    h.data <- grown
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_elt h =
  if h.size = 0 then invalid_arg "Heap.min_elt: empty";
  h.data.(0)

let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty";
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let clear h = h.size <- 0
