(** Shared-state concurrency analysis (pass 1).

    SmartNIC datapaths run the same NF on many threads/islands at once,
    so every state object is implicitly shared.  This pass classifies
    how each state object is accessed across the whole program and
    derives a {e sharing verdict} that [lib/mapping] consumes when
    pricing and placing state:

    - [Read_only]: loads / read-only vcalls only — replicate freely.
    - [Sync_vcall]: mutated, but only through framework vcalls (table
      engines, counters) whose engines serialize updates.
    - [Atomic]: raw mutation, but every raw write is an [Atomic_op].
    - [Racy]: raw [Store] (worse: a [Load]+[Store] read-modify-write)
      with no synchronization — concurrent threads lose updates.

    Diagnostics:
    - CLARA001 (error): unsynchronized read-modify-write on a state
      object, naming the load and store blocks.
    - CLARA002 (warn): blind unsynchronized [Store] (no load observed —
      last-writer-wins, racy but not a lost-update RMW).
    - CLARA003 (info): state mutated with atomics; placement must be
      atomics-capable. *)

type verdict = Read_only | Sync_vcall | Atomic | Racy

val verdict_name : verdict -> string
(** ["read_only"], ["sync_vcall"], ["atomic"], ["racy"] — stable, used
    in JSON reports and explore cache keys. *)

val analyze :
  Clara_cir.Ir.program -> (string * verdict) list * Diag.t list
(** Verdicts for every declared state object (in declaration order),
    plus the diagnostics.  State names referenced but never declared
    are ignored here — the cost-sanity pass reports them (CLARA302). *)

val stateless : Clara_cir.Ir.program -> bool
(** True when every state object is [Read_only] (or there is none):
    per-packet cost depends only on the packet, so the simulator's
    steady-state fast path ([Engine.Auto]) is safe to enable. *)
