(** Generic worklist dataflow over CIR CFGs.

    A pass supplies a join-semilattice (with [bottom] as the
    "unreached" element), a per-block transfer function, and optionally
    a per-edge transfer (how facts change along a specific CFG edge —
    this is what makes guard-sensitive path analysis expressible).
    [solve] iterates to the least fixed point with a FIFO worklist.

    Termination relies on the usual monotonicity contract: [transfer]
    and [edge] must be monotone.  Lattices with infinite (or very tall)
    ascending chains — e.g. {!Interval} — must supply [?widen]: after a
    block's input has strictly grown [widen_delay] times, further joins
    are replaced by the widening operator, which jumps moving bounds to
    a stable over-approximation.  A safety valve remains: if no fixed
    point is reached within an iteration budget proportional to the CFG
    size, [solve] returns [Budget_exhausted] (carrying the partial
    state) instead of spinning, and callers degrade to a diagnostic. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** The "no information / unreached" element: identity for [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    input : L.t array;   (** Fact at block entry (exit, if backward). *)
    output : L.t array;  (** Fact at block exit (entry, if backward). *)
    iterations : int;    (** Blocks processed before the fixed point. *)
  }

  type outcome =
    | Fixpoint of result
    | Budget_exhausted of { budget : int; prog : string; partial : result }
        (** The iteration budget ran out before a fixed point
            (non-monotone transfer, or an infinite-height lattice with
            no [?widen]).  [partial] holds the facts computed so far —
            an under-approximation, usable only for best-effort
            reporting. *)

  val solve :
    ?direction:direction ->
    ?edge:(src:Clara_cir.Ir.block -> dst:int -> L.t -> L.t) ->
    ?widen:(L.t -> L.t -> L.t) ->
    ?widen_delay:int ->
    init:L.t ->
    transfer:(Clara_cir.Ir.block -> L.t -> L.t) ->
    Clara_cir.Ir.program ->
    outcome
  (** [init] seeds the entry block (every [Ret] block, if backward).
      [edge ~src ~dst fact] transforms [src]'s output as it flows along
      the CFG edge [src.bid -> dst]; it defaults to the identity.  For
      [Backward], facts propagate against edge direction but [edge]
      still receives the edge as written in the program.

      [widen old joined] replaces the plain join once a block's input
      has strictly grown more than [widen_delay] (default 3) times; it
      must satisfy [leq joined (widen old joined)] and stabilize
      ascending chains. *)

  val solve_exn :
    ?direction:direction ->
    ?edge:(src:Clara_cir.Ir.block -> dst:int -> L.t -> L.t) ->
    ?widen:(L.t -> L.t -> L.t) ->
    ?widen_delay:int ->
    init:L.t ->
    transfer:(Clara_cir.Ir.block -> L.t -> L.t) ->
    Clara_cir.Ir.program ->
    result
  (** [solve] that raises [Failure] on [Budget_exhausted], for passes
      where exhaustion can only mean a broken lattice. *)
end
