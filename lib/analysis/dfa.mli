(** Generic worklist dataflow over CIR CFGs.

    A pass supplies a join-semilattice (with [bottom] as the
    "unreached" element), a per-block transfer function, and optionally
    a per-edge transfer (how facts change along a specific CFG edge —
    this is what makes guard-sensitive path analysis expressible).
    [solve] iterates to the least fixed point with a FIFO worklist.

    Termination relies on the usual monotonicity contract: [transfer]
    and [edge] must be monotone and the lattice must have finite
    ascending chains.  A safety valve aborts after an iteration budget
    proportional to the CFG size so a buggy lattice fails loudly
    instead of spinning. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** The "no information / unreached" element: identity for [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    input : L.t array;   (** Fact at block entry (exit, if backward). *)
    output : L.t array;  (** Fact at block exit (entry, if backward). *)
    iterations : int;    (** Blocks processed before the fixed point. *)
  }

  val solve :
    ?direction:direction ->
    ?edge:(src:Clara_cir.Ir.block -> dst:int -> L.t -> L.t) ->
    init:L.t ->
    transfer:(Clara_cir.Ir.block -> L.t -> L.t) ->
    Clara_cir.Ir.program ->
    result
  (** [init] seeds the entry block (every [Ret] block, if backward).
      [edge ~src ~dst fact] transforms [src]'s output as it flows along
      the CFG edge [src.bid -> dst]; it defaults to the identity.  For
      [Backward], facts propagate against edge direction but [edge]
      still receives the edge as written in the program.

      @raise Failure if the iteration budget is exhausted (non-monotone
      transfer or infinite-height lattice). *)
end
