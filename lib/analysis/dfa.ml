module Ir = Clara_cir.Ir

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { input : L.t array; output : L.t array; iterations : int }

  type outcome =
    | Fixpoint of result
    | Budget_exhausted of { budget : int; prog : string; partial : result }

  let solve ?(direction = Forward) ?edge ?widen ?(widen_delay = 3) ~init
      ~transfer (p : Ir.program) =
    let n = Array.length p.Ir.blocks in
    let edge =
      match edge with Some f -> f | None -> fun ~src:_ ~dst:_ x -> x
    in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    (* [flow.(b)] lists the (edge_src, edge_dst, successor-in-traversal)
       triples along which b's output propagates.  For Forward the
       traversal successor is the edge destination; for Backward it is
       the edge source (facts run against the arrows), but [edge] always
       sees the edge as written in the program. *)
    let flow = Array.make n [] in
    let seeds = ref [] in
    Array.iter
      (fun (b : Ir.block) ->
        let succs = Ir.successors b.Ir.term in
        match direction with
        | Forward ->
            flow.(b.Ir.bid) <- List.map (fun d -> (b, d, d)) succs;
            if b.Ir.bid = p.Ir.entry then seeds := b.Ir.bid :: !seeds
        | Backward ->
            List.iter
              (fun d -> flow.(d) <- (b, d, b.Ir.bid) :: flow.(d))
              succs;
            if b.Ir.term = Ir.Ret then seeds := b.Ir.bid :: !seeds)
      p.Ir.blocks;
    List.iter (fun s -> input.(s) <- L.join input.(s) init) !seeds;
    (* How many times each block's input has strictly grown.  Past
       [widen_delay] updates the join is replaced by [widen] (when
       supplied), which must over-approximate the join and stabilize
       ascending chains — the termination story for infinite-height
       lattices like {!Interval}. *)
    let bumps = Array.make n 0 in
    let budget = 1000 * (n + 1) in
    let iterations = ref 0 in
    let exhausted = ref false in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue b =
      if not queued.(b) then (
        queued.(b) <- true;
        Queue.add b queue)
    in
    List.iter enqueue (List.rev !seeds);
    while (not (Queue.is_empty queue)) && not !exhausted do
      let b = Queue.pop queue in
      queued.(b) <- false;
      incr iterations;
      if !iterations > budget then exhausted := true
      else
        let out = transfer p.Ir.blocks.(b) input.(b) in
        if not (L.equal out output.(b)) then (
          output.(b) <- out;
          List.iter
            (fun (src, dst, next) ->
              let contrib = edge ~src ~dst out in
              let joined = L.join input.(next) contrib in
              if not (L.equal joined input.(next)) then (
                bumps.(next) <- bumps.(next) + 1;
                let updated =
                  match widen with
                  | Some w when bumps.(next) > widen_delay ->
                      w input.(next) joined
                  | _ -> joined
                in
                input.(next) <- updated;
                enqueue next))
            flow.(b))
    done;
    let r = { input; output; iterations = !iterations } in
    if !exhausted then
      Budget_exhausted { budget; prog = p.Ir.prog_name; partial = r }
    else Fixpoint r

  (* Most passes want the fixpoint or a loud failure; the suite-facing
     passes match on the outcome instead and degrade to a diagnostic. *)
  let solve_exn ?direction ?edge ?widen ?widen_delay ~init ~transfer p =
    match solve ?direction ?edge ?widen ?widen_delay ~init ~transfer p with
    | Fixpoint r -> r
    | Budget_exhausted { budget; prog; _ } ->
        failwith
          (Printf.sprintf
             "Dfa.solve: no fixed point after %d steps on %s (non-monotone \
              transfer?)"
             budget prog)
end
