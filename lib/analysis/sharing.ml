module Ir = Clara_cir.Ir

type verdict = Read_only | Sync_vcall | Atomic | Racy

let verdict_name = function
  | Read_only -> "read_only"
  | Sync_vcall -> "sync_vcall"
  | Atomic -> "atomic"
  | Racy -> "racy"

(* Block ids where each kind of access to one state object occurs, in
   ascending order (first occurrence first — messages cite the head). *)
type access = {
  loads : int list;
  stores : int list;
  atomics : int list;
  vcall_writes : int list;
  vcall_reads : int list;
}

let empty =
  { loads = []; stores = []; atomics = []; vcall_writes = []; vcall_reads = [] }

let size_is_zero = function Ir.S_const 0 -> true | _ -> false

let collect (p : Ir.program) =
  let tbl = Hashtbl.create 8 in
  let get s = Option.value (Hashtbl.find_opt tbl s) ~default:empty in
  let add s f = Hashtbl.replace tbl s (f (get s)) in
  Array.iter
    (fun (b : Ir.block) ->
      let bid = b.Ir.bid in
      List.iter
        (fun instr ->
          match instr with
          | Ir.Load (Ir.L_state s) ->
              add s (fun a -> { a with loads = a.loads @ [ bid ] })
          | Ir.Store (Ir.L_state s) ->
              add s (fun a -> { a with stores = a.stores @ [ bid ] })
          | Ir.Atomic_op (Ir.L_state s) ->
              add s (fun a -> { a with atomics = a.atomics @ [ bid ] })
          | Ir.Vcall { state = Some s; state_reads; state_writes; _ } ->
              if not (size_is_zero state_writes) then
                add s (fun a -> { a with vcall_writes = a.vcall_writes @ [ bid ] });
              if not (size_is_zero state_reads) then
                add s (fun a -> { a with vcall_reads = a.vcall_reads @ [ bid ] })
          | _ -> ())
        b.Ir.instrs)
    p.Ir.blocks;
  get

let classify a =
  if a.stores <> [] then Racy
  else if a.atomics <> [] then Atomic
  else if a.vcall_writes <> [] then Sync_vcall
  else Read_only

(* A program is stateless for simulation purposes when no state object
   is ever written: every packet's cost then depends only on the packet
   itself, which is what licenses the engine's steady-state fast path. *)
let stateless (p : Ir.program) =
  let access = collect p in
  List.for_all
    (fun (st : Ir.state_obj) -> classify (access st.Ir.st_name) = Read_only)
    p.Ir.states

let analyze (p : Ir.program) =
  let access = collect p in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let verdicts =
    List.map
      (fun (st : Ir.state_obj) ->
        let s = st.Ir.st_name in
        let a = access s in
        let v = classify a in
        (match v with
        | Racy when a.loads <> [] ->
            emit
              (Diag.make ~block:(List.hd a.stores) ~code:"CLARA001"
                 ~severity:Diag.Error ~pass:"sharing"
                 (Printf.sprintf
                    "unsynchronized read-modify-write on state '%s': load in \
                     b%d, store in b%d; concurrent threads lose updates \
                     (use an atomic op, e.g. state_add, or pin to a \
                     single-threaded unit)"
                    s (List.hd a.loads) (List.hd a.stores)))
        | Racy ->
            emit
              (Diag.make ~block:(List.hd a.stores) ~code:"CLARA002"
                 ~severity:Diag.Warn ~pass:"sharing"
                 (Printf.sprintf
                    "unsynchronized store to shared state '%s' in b%d: \
                     last-writer-wins under concurrency"
                    s (List.hd a.stores)))
        | Atomic ->
            emit
              (Diag.make ~block:(List.hd a.atomics) ~code:"CLARA003"
                 ~severity:Diag.Info ~pass:"sharing"
                 (Printf.sprintf
                    "state '%s' is mutated with atomic ops; placement must \
                     support atomics"
                    s))
        | Sync_vcall | Read_only -> ());
        (s, v))
      p.Ir.states
  in
  (verdicts, List.rev !diags)
