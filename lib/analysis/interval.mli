(** Interval domain over floats with infinities, for the bounds
    abstract interpretation ({!Bounds}).

    [Bot] is the empty interval ("unreached"); [make lo hi] normalizes
    an inverted range to [Bot] and NaN endpoints to the conservative
    infinity.  The module satisfies {!Dfa.LATTICE} ([bottom] / [equal]
    / [join]) and additionally provides [widen]/[narrow] — the lattice
    has infinite ascending chains, so {!Dfa.Make}'s [?widen] hook is
    required for termination on cyclic CFGs. *)

type t = Bot | Iv of { lo : float; hi : float }

val bottom : t
val top : t

val make : float -> float -> t
(** [make lo hi]; [Bot] when [lo > hi]; NaN endpoints become infinite. *)

val const : float -> t
val is_bottom : t -> bool
val lo : t -> float
(** [+inf] on [Bot] (identity for interval min). *)

val hi : t -> float
(** [-inf] on [Bot] (identity for interval max). *)

val is_finite : t -> bool
val contains : t -> float -> bool
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old joined]: endpoints that grew jump to infinity, so every
    ascending chain stabilizes in at most two widening steps. *)

val narrow : t -> t -> t
(** [narrow widened refined]: only infinite endpoints are refined, so a
    descending pass cannot oscillate. *)

val add : t -> t -> t

val mul : t -> t -> t
(** [0 * inf = 0] (a never-executed unbounded block). *)

val scale : float -> t -> t
val pp : Format.formatter -> t -> unit
val to_json : t -> Clara_util.Json.t
