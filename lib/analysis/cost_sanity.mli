(** Cost-sanity lint (pass 4).

    Shapes that are legal CIR but price catastrophically or crash the
    mapping stage:

    - CLARA301 (warn): a packet-buffer write inside a payload-scaled
      loop — the packet is touched once per payload byte, so per-packet
      buffer traffic is quadratic in payload size once the buffer
      spills past the CTM threshold.
    - CLARA302 (error): an instruction references a state object the
      program never declared.  Statically reports what would otherwise
      surface at mapping time as [Ir.Unknown_state]. *)

val analyze : Clara_cir.Ir.program -> Diag.t list
