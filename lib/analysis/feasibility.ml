module Ir = Clara_cir.Ir
module L = Clara_lnic

let rec size_has_opaque = function
  | Ir.S_opaque -> true
  | Ir.S_scaled (e, _) -> size_has_opaque e
  | Ir.S_plus (e, _) -> size_has_opaque e
  | Ir.S_const _ | Ir.S_payload | Ir.S_packet | Ir.S_header
  | Ir.S_state_entries _ ->
      false

let vcall_supported (g : L.Graph.t) vc =
  L.Params.core_vcall_cost g.L.Graph.params vc <> None
  || List.exists
       (fun (u : L.Unit_.t) ->
         match u.L.Unit_.kind with
         | L.Unit_.Accelerator k ->
             L.Params.accel_vcall_cost g.L.Graph.params k vc <> None
         | L.Unit_.General_core _ -> false)
       (L.Graph.accelerators g)

let analyze ~(lnic : L.Graph.t) (p : Ir.program) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* CLARA101 / CLARA104: per-vcall checks, reported once per vcall kind
     (first occurrence) to keep reports readable on unrolled bodies. *)
  let seen_unsupported = Hashtbl.create 4 in
  let seen_opaque_size = Hashtbl.create 4 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun i instr ->
          match instr with
          | Ir.Vcall { vc; size; _ } ->
              if
                (not (vcall_supported lnic vc))
                && not (Hashtbl.mem seen_unsupported vc)
              then (
                Hashtbl.add seen_unsupported vc ();
                emit
                  (Diag.make ~block:b.Ir.bid ~instr:i ~code:"CLARA101"
                     ~severity:Diag.Error ~pass:"feasibility"
                     (Printf.sprintf
                        "vcall '%s' (b%d) has no supporting compute unit on \
                         target '%s': cores lack a software path and no \
                         present accelerator implements it"
                        (L.Params.vcall_name vc) b.Ir.bid lnic.L.Graph.name)));
              if size_has_opaque size && not (Hashtbl.mem seen_opaque_size vc)
              then (
                Hashtbl.add seen_opaque_size vc ();
                emit
                  (Diag.make ~block:b.Ir.bid ~instr:i ~code:"CLARA104"
                     ~severity:Diag.Info ~pass:"feasibility"
                     (Printf.sprintf
                        "vcall '%s' (b%d) is sized by a statically-unknown \
                         expression; its predicted cost is a guess"
                        (L.Params.vcall_name vc) b.Ir.bid)))
          | _ -> ())
        b.Ir.instrs;
      (* CLARA103: opaque trip counts defeat latency prediction. *)
      match b.Ir.term with
      | Ir.Loop { trip; _ } when size_has_opaque trip ->
          emit
            (Diag.make ~block:b.Ir.bid ~code:"CLARA103" ~severity:Diag.Warn
               ~pass:"feasibility"
               (Printf.sprintf
                  "loop headed at b%d has a statically-unknown trip count; \
                   prediction assumes a fixed opaque-trip guess, losing \
                   latency clarity on this path"
                  b.Ir.bid))
      | _ -> ())
    p.Ir.blocks;
  (* CLARA102: state must fit somewhere sharable. *)
  let shared_mems =
    Array.to_list lnic.L.Graph.memories
    |> List.filter (fun (m : L.Memory.t) -> m.L.Memory.level <> L.Memory.Local)
  in
  let accel_srams =
    List.filter_map
      (fun (u : L.Unit_.t) ->
        match u.L.Unit_.kind with
        | L.Unit_.Accelerator k ->
            let s = L.Params.accel_sram lnic.L.Graph.params k in
            if s > 0 then Some s else None
        | L.Unit_.General_core _ -> None)
      (L.Graph.accelerators lnic)
  in
  let largest =
    List.fold_left
      (fun acc (m : L.Memory.t) -> max acc m.L.Memory.size_bytes)
      (List.fold_left max 0 accel_srams)
      shared_mems
  in
  List.iter
    (fun (st : Ir.state_obj) ->
      let bytes = Ir.state_bytes st in
      if bytes > largest then
        emit
          (Diag.make ~code:"CLARA102" ~severity:Diag.Error ~pass:"feasibility"
             (Printf.sprintf
                "state '%s' (%d bytes) exceeds every memory tier on target \
                 '%s' (largest sharable region: %d bytes)"
                st.Ir.st_name bytes lnic.L.Graph.name largest)))
    p.Ir.states;
  (* CLARA105: off-path fast-path demotions.  On a target with an eSwitch,
     a state rides the hardware fast path only if every touch is a vcall
     the eSwitch implements, it is race-free, and it fits the flow-cache
     SRAM; explain violations here so `clara lint --target bluefield`
     shows the slow-path demotion before mapping runs. *)
  (if L.Graph.find_accelerator lnic L.Unit_.Eswitch <> None then
     let sram = L.Params.accel_sram lnic.L.Graph.params L.Unit_.Eswitch in
     let sharing, _ = Sharing.analyze p in
     let vcalls_of = Hashtbl.create 8 and raw_touch = Hashtbl.create 8 in
     Array.iter
       (fun (b : Ir.block) ->
         List.iter
           (fun instr ->
             match instr with
             | Ir.Vcall { vc; state = Some s; _ } ->
                 let cur =
                   Option.value ~default:[] (Hashtbl.find_opt vcalls_of s)
                 in
                 if not (List.mem vc cur) then
                   Hashtbl.replace vcalls_of s (vc :: cur)
             | Ir.Load (Ir.L_state s)
             | Ir.Store (Ir.L_state s)
             | Ir.Atomic_op (Ir.L_state s) ->
                 Hashtbl.replace raw_touch s ()
             | _ -> ())
           b.Ir.instrs)
       p.Ir.blocks;
     List.iter
       (fun (st : Ir.state_obj) ->
         let s = st.Ir.st_name in
         match Hashtbl.find_opt vcalls_of s with
         | None -> () (* never vcall-touched: nothing to offload *)
         | Some vcs ->
             let unsupported =
               List.filter
                 (fun vc ->
                   L.Params.accel_vcall_cost lnic.L.Graph.params L.Unit_.Eswitch
                     vc
                   = None)
                 vcs
             in
             let reasons = ref [] in
             if unsupported <> [] then
               reasons :=
                 Printf.sprintf "vcall%s %s not implemented by the eSwitch"
                   (if List.length unsupported > 1 then "s" else "")
                   (String.concat ", "
                      (List.map L.Params.vcall_name (List.rev unsupported)))
                 :: !reasons;
             if Hashtbl.mem raw_touch s then
               reasons :=
                 "raw loads/stores touch it outside any vcall" :: !reasons;
             if List.assoc_opt s sharing = Some Sharing.Racy then
               reasons := "the sharing analysis judged it racy" :: !reasons;
             if Ir.state_bytes st > sram then
               reasons :=
                 Printf.sprintf "its %d bytes exceed the %d-byte flow cache"
                   (Ir.state_bytes st) sram
                 :: !reasons;
             if !reasons <> [] then
               emit
                 (Diag.make ~code:"CLARA105" ~severity:Diag.Warn
                    ~pass:"feasibility"
                    (Printf.sprintf
                       "state '%s' cannot ride the eSwitch fast path on \
                        target '%s' (%s): its packets take the core slow \
                        path, paying the upcall on every flow-cache miss"
                       s lnic.L.Graph.name
                       (String.concat "; " (List.rev !reasons)))))
       p.Ir.states);
  List.rev !diags
