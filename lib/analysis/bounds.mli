(** Static per-packet-type latency bounds (pass 5, [clara bounds]).

    A forward abstract interpretation of the CIR CFG over the
    {!Interval} domain computes, per traffic class, how many times each
    block can execute for one packet (loop trips inferred from guards
    and payload-length ranges; branch arms contradicted by the class's
    guard facts killed), then multiplies the counts into
    {!Clara_dataflow.Cost_interval} node envelopes to yield sound
    per-axis cycle intervals on the [queue; compute; accel_wait; mem;
    wire] basis the calibration ledger uses.

    Soundness contract: for every admissible execution (any placement,
    any packet in the size envelope, any cache/table regime, bounded
    ingress queueing), the simulated per-type mean latency lies within
    [tb_total] — the bench [bounds] section enforces this for every
    example NF on every target.

    Diagnostics:
    - CLARA401 (error): a reachable loop with no statically derivable
      iteration bound — worst-case latency is unbounded.
    - CLARA402 (warn): finite bounds whose service-interval ratio
      exceeds a configurable threshold — the program's performance is
      real but {e unclear}, depending heavily on data-dependent paths.
    - CLARA403 (error): the best-case total already exceeds the p99
      SLO — a provable violation on every packet. *)

type axes = {
  a_queue : Interval.t;       (** Ingress queueing allowance [0, hi]. *)
  a_compute : Interval.t;     (** Core + accelerator service. *)
  a_accel_wait : Interval.t;  (** Accelerator contention allowance. *)
  a_mem : Interval.t;
  a_wire : Interval.t;        (** DMA + hub, rx always, tx emit-gated. *)
}

type type_bounds = {
  tb_type : string;     (** "all", "tcp", "tcp-syn", "udp", "other". *)
  tb_axes : axes;
  tb_service : Interval.t;  (** compute + mem + wire (no contention). *)
  tb_total : Interval.t;    (** service + queue/accel-wait allowances. *)
}

type t = {
  bt_prog : string;
  bt_target : string;
  bt_freq_mhz : int;            (** For cycles -> us conversion. *)
  bt_per_type : type_bounds list;
  bt_unbounded_loops : int list;
  bt_exhausted : bool;  (** Count analysis hit its budget; bounds are
                            degraded to [0, inf) but still sound. *)
}

val mtu_payload : float

val analyze :
  ?payload_max:float -> lnic:Clara_lnic.Graph.t -> Clara_cir.Ir.program -> t

val find : t -> string -> type_bounds option
val unbounded_loops : ?payload_max:float -> Clara_cir.Ir.program -> int list

type verdict = Provably_meets | Provably_violates | Unclear

val verdict_name : verdict -> string
val slo_cycles : t -> slo_p99_us:float -> float

val verdict : t -> slo_p99_us:float -> verdict
(** Judged on the "all" row: [hi <= slo] proves the SLO holds for every
    packet; [lo > slo] proves no packet can meet it. *)

val default_gap_ratio : float

val lint :
  ?lnic:Clara_lnic.Graph.t ->
  ?slo_p99_us:float ->
  ?gap_ratio:float ->
  Clara_cir.Ir.program ->
  Diag.t list
(** CLARA401 needs no target; CLARA402/403 require [?lnic]. *)

val us_of : t -> float -> float
val axis_list : axes -> (string * Interval.t) list
val to_json : t -> Clara_util.Json.t
val pp : Format.formatter -> t -> unit
