module Ir = Clara_cir.Ir

type report = {
  program : string;
  target : string option;
  diagnostics : Diag.t list;
  sharing : (string * Sharing.verdict) list;
}

let obs = Clara_obs.Registry.default
let c_runs = Clara_obs.Registry.counter obs "analysis.runs"
let c_errors = Clara_obs.Registry.counter obs "analysis.errors"
let c_warnings = Clara_obs.Registry.counter obs "analysis.warnings"
let c_infos = Clara_obs.Registry.counter obs "analysis.infos"
let c_sharing = Clara_obs.Registry.counter obs "analysis.diags.sharing"
let c_feas = Clara_obs.Registry.counter obs "analysis.diags.feasibility"
let c_paths = Clara_obs.Registry.counter obs "analysis.diags.paths"
let c_cost = Clara_obs.Registry.counter obs "analysis.diags.cost"
let c_bounds = Clara_obs.Registry.counter obs "analysis.diags.bounds"

let run ?lnic ?slo_p99_us ?bounds_gap_ratio (p : Ir.program) =
  Clara_obs.Metrics.incr c_runs;
  let sharing, sharing_diags = Sharing.analyze p in
  let feas_diags =
    match lnic with None -> [] | Some g -> Feasibility.analyze ~lnic:g p
  in
  let path_diags = Paths.analyze p in
  let cost_diags = Cost_sanity.analyze p in
  let bounds_diags =
    Bounds.lint ?lnic ?slo_p99_us ?gap_ratio:bounds_gap_ratio p
  in
  Clara_obs.Metrics.add c_sharing (List.length sharing_diags);
  Clara_obs.Metrics.add c_feas (List.length feas_diags);
  Clara_obs.Metrics.add c_paths (List.length path_diags);
  Clara_obs.Metrics.add c_cost (List.length cost_diags);
  Clara_obs.Metrics.add c_bounds (List.length bounds_diags);
  let diagnostics =
    List.sort Diag.compare
      (sharing_diags @ feas_diags @ path_diags @ cost_diags @ bounds_diags)
  in
  List.iter
    (fun (d : Diag.t) ->
      Clara_obs.Metrics.incr
        (match d.Diag.severity with
        | Diag.Error -> c_errors
        | Diag.Warn -> c_warnings
        | Diag.Info -> c_infos))
    diagnostics;
  {
    program = p.Ir.prog_name;
    target = Option.map (fun (g : Clara_lnic.Graph.t) -> g.Clara_lnic.Graph.name) lnic;
    diagnostics;
    sharing;
  }

let severity_is s (d : Diag.t) = d.Diag.severity = s
let errors r = List.filter (severity_is Diag.Error) r.diagnostics
let warnings r = List.filter (severity_is Diag.Warn) r.diagnostics
let has_errors r = errors r <> []

let to_json r =
  let module J = Clara_util.Json in
  let count s = List.length (List.filter (severity_is s) r.diagnostics) in
  J.Obj
    [ ("program", J.String r.program);
      ( "target",
        match r.target with None -> J.Null | Some t -> J.String t );
      ( "summary",
        J.Obj
          [ ("errors", J.Int (count Diag.Error));
            ("warnings", J.Int (count Diag.Warn));
            ("infos", J.Int (count Diag.Info)) ] );
      ( "sharing",
        J.Obj
          (List.map
             (fun (s, v) -> (s, J.String (Sharing.verdict_name v)))
             r.sharing) );
      ("diagnostics", J.List (List.map Diag.to_json r.diagnostics)) ]

let pp fmt r =
  Format.fprintf fmt "@[<v>lint %s%s:@," r.program
    (match r.target with None -> "" | Some t -> " (target " ^ t ^ ")");
  List.iter (fun d -> Format.fprintf fmt "  %a@," Diag.pp d) r.diagnostics;
  if r.sharing <> [] then (
    Format.fprintf fmt "  state sharing:@,";
    List.iter
      (fun (s, v) ->
        Format.fprintf fmt "    %-16s %s@," s (Sharing.verdict_name v))
      r.sharing);
  let count s = List.length (List.filter (severity_is s) r.diagnostics) in
  Format.fprintf fmt "  %d error(s), %d warning(s), %d info@]"
    (count Diag.Error) (count Diag.Warn) (count Diag.Info)
