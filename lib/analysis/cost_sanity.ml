module Ir = Clara_cir.Ir

let rec payload_scaled = function
  | Ir.S_payload | Ir.S_packet -> true
  | Ir.S_scaled (e, _) | Ir.S_plus (e, _) -> payload_scaled e
  | Ir.S_const _ | Ir.S_header | Ir.S_state_entries _ | Ir.S_opaque -> false

(* Blocks making up a loop's body: reachable from [body] without
   passing through the header (the back edge ends an iteration) or the
   exit. *)
let body_blocks (p : Ir.program) ~header ~body ~exit_ =
  let seen = Hashtbl.create 8 in
  let rec go b =
    if b <> header && b <> exit_ && not (Hashtbl.mem seen b) then (
      Hashtbl.add seen b ();
      List.iter go (Ir.successors p.Ir.blocks.(b).Ir.term))
  in
  go body;
  Hashtbl.fold (fun b () acc -> b :: acc) seen []

let state_of_instr = function
  | Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s)
  | Ir.Atomic_op (Ir.L_state s) ->
      Some s
  | Ir.Vcall { state = Some s; _ } -> Some s
  | _ -> None

let analyze (p : Ir.program) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* CLARA301: payload-scaled loops whose body writes the packet. *)
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Loop { body; exit; trip } when payload_scaled trip ->
          let writes_packet bid =
            List.exists
              (function Ir.Store Ir.L_packet -> true | _ -> false)
              p.Ir.blocks.(bid).Ir.instrs
          in
          let bodies = body_blocks p ~header:b.Ir.bid ~body ~exit_:exit in
          if List.exists writes_packet bodies then
            emit
              (Diag.make ~block:b.Ir.bid ~code:"CLARA301" ~severity:Diag.Warn
                 ~pass:"cost"
                 (Printf.sprintf
                    "loop at b%d (trip %s) writes the packet buffer every \
                     iteration: per-packet buffer traffic is quadratic in \
                     payload size once the buffer spills past the CTM \
                     threshold"
                    b.Ir.bid
                    (Format.asprintf "%a" Ir.pp_size trip)))
      | _ -> ())
    p.Ir.blocks;
  (* CLARA302: dangling state references, one report per name. *)
  let reported = Hashtbl.create 4 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun i instr ->
          match state_of_instr instr with
          | Some s
            when Ir.state_obj_opt p s = None && not (Hashtbl.mem reported s)
            ->
              Hashtbl.add reported s ();
              emit
                (Diag.make ~block:b.Ir.bid ~instr:i ~code:"CLARA302"
                   ~severity:Diag.Error ~pass:"cost"
                   (Printf.sprintf
                      "b%d references undeclared state '%s'; mapping would \
                       fail with Unknown_state"
                      b.Ir.bid s))
          | _ -> ())
        b.Ir.instrs)
    p.Ir.blocks;
  List.rev !diags
