(** Offload-feasibility lint against a concrete LNIC target (pass 2).

    Catches programs that cannot map onto the chosen NIC — or whose
    predictions would be vacuous — before the ILP ever runs:

    - CLARA101 (error): a vcall with no supporting compute unit — the
      target's cores have no software cost model for it and no present
      accelerator implements it.
    - CLARA102 (error): a state object whose footprint exceeds every
      sharable memory tier and every accelerator SRAM on the target.
    - CLARA103 (warn): a loop with a statically-unknown ([S_opaque])
      trip count — prediction falls back to a fixed guess, so the
      latency clarity the tool exists for is lost on that path.
    - CLARA104 (info): a vcall sized by an opaque expression.
    - CLARA105 (warn, eSwitch targets only): a state object that cannot
      ride the hardware fast path — some touching vcall is not
      implemented by the eSwitch, raw loads/stores or a racy sharing
      verdict disqualify it, or it exceeds the flow-cache SRAM — so its
      packets demote to the core slow path and pay the upcall on every
      flow-cache miss. *)

val analyze :
  lnic:Clara_lnic.Graph.t -> Clara_cir.Ir.program -> Diag.t list
