(** Run every analysis pass over a program and aggregate the results.

    The suite is target-optional: without an [lnic] the feasibility
    pass is skipped (there is nothing concrete to lint against) and the
    report's [target] is [None].

    Per-run counters land in {!Clara_obs.Registry.default}:
    [analysis.runs], [analysis.diags.<pass>], [analysis.errors],
    [analysis.warnings], [analysis.infos]. *)

type report = {
  program : string;                            (** [prog_name]. *)
  target : string option;                      (** LNIC name, if linted. *)
  diagnostics : Diag.t list;                   (** Sorted, errors first. *)
  sharing : (string * Sharing.verdict) list;   (** One per state object. *)
}

val run :
  ?lnic:Clara_lnic.Graph.t ->
  ?slo_p99_us:float ->
  ?bounds_gap_ratio:float ->
  Clara_cir.Ir.program ->
  report
(** [?slo_p99_us] arms the CLARA403 provable-SLO-violation check and
    [?bounds_gap_ratio] overrides {!Bounds.default_gap_ratio}; both
    feed the bounds pass, which otherwise runs with defaults (CLARA401
    needs no target, CLARA402/403 only fire when [?lnic] is given). *)

val errors : report -> Diag.t list
val warnings : report -> Diag.t list
val has_errors : report -> bool

val to_json : report -> Clara_util.Json.t
(** [{program, target, summary: {errors, warnings, infos}, sharing:
    {state: verdict, ...}, diagnostics: [...]}]. *)

val pp : Format.formatter -> report -> unit
(** Human-readable listing: one diagnostic per line, then the sharing
    verdicts and a summary count line. *)
