type severity = Error | Warn | Info

type t = {
  code : string;
  severity : severity;
  pass : string;
  block : int option;
  instr : int option;
  message : string;
}

let make ?block ?instr ~code ~severity ~pass message =
  { code; severity; pass; block; instr; message }

let severity_name = function Error -> "error" | Warn -> "warn" | Info -> "info"
let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c =
        Option.compare Int.compare a.block b.block
      in
      if c <> 0 then c else String.compare a.message b.message

let to_json d =
  let module J = Clara_util.Json in
  let opt_int = function None -> J.Null | Some i -> J.Int i in
  J.Obj
    [ ("code", J.String d.code);
      ("severity", J.String (severity_name d.severity));
      ("pass", J.String d.pass);
      ("block", opt_int d.block);
      ("instr", opt_int d.instr);
      ("message", J.String d.message) ]

let pp fmt d =
  let where =
    match (d.block, d.instr) with
    | Some b, Some i -> Printf.sprintf " b%d#%d" b i
    | Some b, None -> Printf.sprintf " b%d" b
    | None, _ -> ""
  in
  Format.fprintf fmt "%s %-5s [%s]%s: %s" d.code
    (severity_name d.severity) d.pass where d.message
