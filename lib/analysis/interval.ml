(* Interval domain over floats, the abstract values Bounds interprets
   CIR with: packet-header sizes, flag-dependent branch outcomes, loop
   trip counts and cycle costs all live in [lo, hi] ranges.  Endpoints
   may be infinite (an S_opaque trip has hi = +inf); NaN never enters
   the domain — constructors sanitize it to the conservative top. *)

type t = Bot | Iv of { lo : float; hi : float }

let bottom = Bot
let top = Iv { lo = Float.neg_infinity; hi = Float.infinity }

let make lo hi =
  let lo = if Float.is_nan lo then Float.neg_infinity else lo in
  let hi = if Float.is_nan hi then Float.infinity else hi in
  if lo > hi then Bot else Iv { lo; hi }

let const v = make v v
let is_bottom t = t = Bot

let lo = function Bot -> Float.infinity | Iv { lo; _ } -> lo
let hi = function Bot -> Float.neg_infinity | Iv { hi; _ } -> hi

let is_finite = function
  | Bot -> true
  | Iv { lo; hi } -> Float.is_finite lo && Float.is_finite hi

let contains t v =
  match t with Bot -> false | Iv { lo; hi } -> lo <= v && v <= hi

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Iv a, Iv b -> a.lo = b.lo && a.hi = b.hi
  | _ -> false

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Iv a, Iv b -> b.lo <= a.lo && a.hi <= b.hi

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv a, Iv b -> Iv { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b -> make (Float.max a.lo b.lo) (Float.min a.hi b.hi)

(* Standard interval widening: an endpoint that moved jumps to its
   infinity, so any ascending chain stabilizes in at most two steps per
   side.  [a] is the accumulated value, [b] the new join. *)
let widen a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv a, Iv b ->
      Iv
        {
          lo = (if b.lo < a.lo then Float.neg_infinity else a.lo);
          hi = (if b.hi > a.hi then Float.infinity else a.hi);
        }

(* Standard narrowing: only refine the endpoints widening threw to
   infinity, so a descending pass cannot oscillate. *)
let narrow a b =
  match (a, b) with
  | Bot, _ -> Bot
  | x, Bot -> x
  | Iv a, Iv b ->
      make
        (if a.lo = Float.neg_infinity then b.lo else a.lo)
        (if a.hi = Float.infinity then b.hi else a.hi)

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b -> make (a.lo +. b.lo) (a.hi +. b.hi)

(* 0 * inf is 0 here, not NaN: a zero-execution-count block contributes
   nothing even when its per-execution cost is unbounded. *)
let mulf a b = if a = 0. || b = 0. then 0. else a *. b

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b ->
      let p1 = mulf a.lo b.lo and p2 = mulf a.lo b.hi in
      let p3 = mulf a.hi b.lo and p4 = mulf a.hi b.hi in
      make
        (Float.min (Float.min p1 p2) (Float.min p3 p4))
        (Float.max (Float.max p1 p2) (Float.max p3 p4))

let scale k t =
  match t with Bot -> Bot | Iv { lo; hi } -> mul (const k) (Iv { lo; hi })

let pp_endpoint fmt v =
  if v = Float.infinity then Format.pp_print_string fmt "inf"
  else if v = Float.neg_infinity then Format.pp_print_string fmt "-inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf fmt "%.0f" v
  else Format.fprintf fmt "%.1f" v

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "_|_"
  | Iv { lo; hi } ->
      Format.fprintf fmt "[%a, %a]" pp_endpoint lo pp_endpoint hi

let to_json t =
  let module J = Clara_util.Json in
  match t with
  | Bot -> J.Null
  | Iv { lo; hi } ->
      let f v =
        if v = Float.infinity then J.String "inf"
        else if v = Float.neg_infinity then J.String "-inf"
        else J.Float v
      in
      J.Obj [ ("lo", f lo); ("hi", f hi) ]
