module Ir = Clara_cir.Ir

(* A fact is an atomic guard plus the polarity under which it is known
   to hold.  Only packet-stable atoms participate (see .mli). *)
type fact = Ir.guard * bool

module L = struct
  type t = Unreached | Facts of fact list (* canonical: sorted, duplicate-free *)

  let bottom = Unreached

  (* Fact lists are sets; compare and intersect canonically so an
     order- or duplicate-perturbed list still behaves as the same
     element.  (The old structural [=] made [join]'s filter order-
     dependent: intersecting two differently-ordered equal sets could
     oscillate against [equal] and burn worklist iterations.) *)
  let canon fs = List.sort_uniq compare fs

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Facts x, Facts y -> canon x = canon y
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Facts x, Facts y ->
        Facts (canon (List.filter (fun f -> List.mem f y) x))
end

module Solver = Dfa.Make (L)

let trackable = function Ir.G_proto _ | Ir.G_flag _ -> true | _ -> false

(* Decompose a guard into the atomic facts implied by it evaluating to
   [pol].  A true disjunction pins down neither arm; a false one
   falsifies both. *)
let rec facts_of_guard g pol =
  match Ir.simplify_guard g with
  | Ir.G_not h -> facts_of_guard h (not pol)
  | Ir.G_or (a, b) ->
      if pol then [] else facts_of_guard a false @ facts_of_guard b false
  | atom -> if trackable atom then [ (atom, pol) ] else []

(* Two facts that cannot hold simultaneously: same atom with opposite
   polarity, or two different protocols both asserted. *)
let conflicts (a, pa) (b, pb) =
  (a = b && pa <> pb)
  || pa && pb
     && (match (a, b) with
        | Ir.G_proto x, Ir.G_proto y -> x <> y
        | _ -> false)

let add_fact fs f =
  if List.exists (conflicts f) fs then None
  else if List.mem f fs then Some fs
  else Some (List.sort compare (f :: fs))

let assuming fs g pol =
  List.fold_left
    (fun acc f -> match acc with None -> None | Some fs -> add_fact fs f)
    (Some fs) (facts_of_guard g pol)

let edge ~(src : Ir.block) ~dst x =
  match x with
  | L.Unreached -> L.Unreached
  | L.Facts fs -> (
      match src.Ir.term with
      | Ir.Cond { guard; then_; else_ } when then_ <> else_ -> (
          match assuming fs guard (dst = then_) with
          | None -> L.Unreached
          | Some fs' -> L.Facts fs')
      | _ -> x)

let cfg_reachable (p : Ir.program) =
  let n = Array.length p.Ir.blocks in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then (
      seen.(b) <- true;
      List.iter go (Ir.successors p.Ir.blocks.(b).Ir.term))
  in
  go p.Ir.entry;
  seen

let analyze (p : Ir.program) =
  match
    Solver.solve ~edge ~init:(L.Facts []) ~transfer:(fun _ x -> x) p
  with
  | Solver.Budget_exhausted { budget; _ } ->
      (* Degrade instead of crashing the lint run: the partial facts are
         an under-approximation, so none of the CLARA201-203 claims
         ("on every path") would be sound to emit from them. *)
      [
        Diag.make ~code:"CLARA204" ~severity:Diag.Warn ~pass:"paths"
          (Printf.sprintf
             "path analysis exhausted its %d-step iteration budget before \
              reaching a fixed point; guard-fact diagnostics skipped"
             budget);
      ]
  | Solver.Fixpoint r ->
      let reachable = cfg_reachable p in
      let diags = ref [] in
      let emit d = diags := d :: !diags in
      Array.iter
        (fun (b : Ir.block) ->
          let bid = b.Ir.bid in
          match r.Solver.input.(bid) with
          | L.Unreached ->
              (* CFG-unreachable blocks are eliminate_dead_blocks' problem;
                 only report blocks a CFG walk believes are live. *)
              if reachable.(bid) then
                emit
                  (Diag.make ~block:bid ~code:"CLARA202" ~severity:Diag.Warn
                     ~pass:"paths"
                     (Printf.sprintf
                        "block b%d is unreachable: every path to it carries \
                         contradictory guard facts"
                        bid))
          | L.Facts fs -> (
              match b.Ir.term with
              | Ir.Cond { guard; then_; else_ } when then_ <> else_ ->
                  let dead pol = assuming fs guard pol = None in
                  let guard_str = Format.asprintf "%a" Ir.pp_guard guard in
                  if dead true then
                    emit
                      (Diag.make ~block:bid ~code:"CLARA201"
                         ~severity:Diag.Warn ~pass:"paths"
                         (Printf.sprintf
                            "guard '%s' at b%d contradicts facts established \
                             on every path here; its then-branch (b%d) never \
                             executes"
                            guard_str bid then_))
                  else if dead false then
                    emit
                      (Diag.make ~block:bid ~code:"CLARA203"
                         ~severity:Diag.Info ~pass:"paths"
                         (Printf.sprintf
                            "guard '%s' at b%d is implied by earlier guards; \
                             its else-branch (b%d) is dead"
                            guard_str bid else_))
              | _ -> ()))
        p.Ir.blocks;
      List.rev !diags
