(** Structured lint diagnostics.

    Every analysis pass reports findings in one shape: a stable
    [CLARAnnn] code (so tooling can allowlist or grep), a severity, the
    pass that produced it, the offending block (and instruction index
    within the block when known), and a human-readable message.  The
    JSON form is what [clara lint --json] and CI consume. *)

type severity = Error | Warn | Info

type t = {
  code : string;      (** Stable identifier, e.g. ["CLARA001"]. *)
  severity : severity;
  pass : string;      (** Producing pass: "sharing", "feasibility", ... *)
  block : int option; (** Offending block id in the analyzed CIR. *)
  instr : int option; (** Instruction index within [block]. *)
  message : string;
}

val make :
  ?block:int -> ?instr:int ->
  code:string -> severity:severity -> pass:string -> string -> t

val severity_name : severity -> string
(** ["error"], ["warn"], ["info"]. *)

val severity_rank : severity -> int
(** 0 for [Error] — sorts most severe first. *)

val compare : t -> t -> int
(** Severity, then code, then block, then message: a stable report
    order independent of pass scheduling. *)

val to_json : t -> Clara_util.Json.t
val pp : Format.formatter -> t -> unit
