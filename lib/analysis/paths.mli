(** Guard/path analysis (pass 3), built on {!Dfa}.

    A forward dataflow collects the guard facts that hold on {e every}
    path into each block (join = set intersection), with a per-edge
    transfer adding the branch condition (positive on the then edge,
    negative on the else edge).  Only packet-stable atoms are tracked —
    [G_proto] and [G_flag] — because table hits, scan matches and
    counter thresholds can change value between two evaluations in the
    same packet's execution (an update between two lookups, two scans
    for different patterns), and a linter must not report false
    contradictions.

    Diagnostics:
    - CLARA201 (warn): a guard contradicts facts established on every
      path to it — its then-arm can never execute (e.g. a [G_proto 6]
      test nested under a [G_proto 17] branch).
    - CLARA202 (warn): a block that is CFG-reachable — so
      [Patterns.eliminate_dead_blocks] keeps it — but every path to it
      carries contradictory guard facts.
    - CLARA203 (info): a guard implied by earlier guards; its else-arm
      is dead. *)

val analyze : Clara_cir.Ir.program -> Diag.t list
