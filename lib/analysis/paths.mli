(** Guard/path analysis (pass 3), built on {!Dfa}.

    A forward dataflow collects the guard facts that hold on {e every}
    path into each block (join = set intersection), with a per-edge
    transfer adding the branch condition (positive on the then edge,
    negative on the else edge).  Only packet-stable atoms are tracked —
    [G_proto] and [G_flag] — because table hits, scan matches and
    counter thresholds can change value between two evaluations in the
    same packet's execution (an update between two lookups, two scans
    for different patterns), and a linter must not report false
    contradictions.

    Diagnostics:
    - CLARA201 (warn): a guard contradicts facts established on every
      path to it — its then-arm can never execute (e.g. a [G_proto 6]
      test nested under a [G_proto 17] branch).
    - CLARA202 (warn): a block that is CFG-reachable — so
      [Patterns.eliminate_dead_blocks] keeps it — but every path to it
      carries contradictory guard facts.
    - CLARA203 (info): a guard implied by earlier guards; its else-arm
      is dead.
    - CLARA204 (warn): the dataflow solver exhausted its iteration
      budget before a fixed point; the pass degrades to this single
      diagnostic instead of crashing the lint run. *)

type fact = Clara_cir.Ir.guard * bool
(** An atomic guard and the polarity under which it is known to hold. *)

module L : sig
  type t = Unreached | Facts of fact list

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  (** Set semantics: fact lists are compared and intersected
      canonically (sorted, duplicate-free), so element order never
      affects the fixpoint. *)
end

val facts_of_guard : Clara_cir.Ir.guard -> bool -> fact list
(** Atomic facts implied by the guard evaluating to the given polarity.
    De Morgan over negated disjunctions: [not (a || b)] yields the
    negative facts of both arms.  Untrackable atoms yield nothing. *)

val conflicts : fact -> fact -> bool
(** Same atom under opposite polarity, or two different [G_proto]s both
    asserted. *)

val assuming : fact list -> Clara_cir.Ir.guard -> bool -> fact list option
(** Extend a consistent fact set with a guard outcome; [None] when the
    outcome contradicts the set (that branch is infeasible). *)

val analyze : Clara_cir.Ir.program -> Diag.t list
