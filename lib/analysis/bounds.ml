(* Static per-packet-type latency bounds: a forward abstract
   interpretation of the CIR CFG over the {!Interval} domain.

   Two layers:

   1. An execution-count analysis ({!Dfa} with interval widening): how
      many times can each block execute for one packet of a given type?
      Loop headers multiply their body's count by the loop-trip range
      (inferred from guards and payload-length ranges); branch arms a
      type's facts kill become unreached; undetermined arms keep their
      upper count but drop to a zero lower.  Back edges are cut (the
      multiplication already accounts for iteration), which makes the
      fixpoint immediate on the reducible CFGs the lowerer emits; the
      widening hook keeps the pass terminating on anything else.

   2. A cost composition: each block's count interval multiplies its
      nodes' {!Clara_dataflow.Cost_interval} envelopes (trip-free — the
      counts carry loop multiplicity), summed into per-axis intervals
      on the [queue; compute; accel_wait; mem; wire] basis the
      calibration ledger uses.  The service axes (compute/mem/accel/
      wire) are pure per-packet work; queue and accel_wait are
      contention allowances: zero at the fast end, a bounded-queue /
      all-threads-in-flight worst case at the slow end.

   Soundness target: the simulator's per-type mean latency must lie
   inside [total.lo, total.hi] (the bench `bounds` section enforces
   this for every example NF on every target). *)

module Ir = Clara_cir.Ir
module D = Clara_dataflow
module Ci = D.Cost_interval
module L = Clara_lnic
module I = Interval

(* ---- size envelopes ------------------------------------------------ *)

(* Workload-independent packet envelope: anything from an empty-payload
   minimal header to an MTU-sized frame. *)
let mtu_payload = 1500.

let header_range_of_type = function
  | "tcp" | "tcp-syn" -> { Ci.rlo = 54.; rhi = 54. }
  | "udp" -> { Ci.rlo = 42.; rhi = 42. }
  | "other" -> { Ci.rlo = 34.; rhi = 34. }
  | _ -> { Ci.rlo = 34.; rhi = 54. }

let sizes_for (p : Ir.program) ~ptype ~payload_max =
  let payload = { Ci.rlo = 0.; rhi = payload_max } in
  let header = header_range_of_type ptype in
  {
    Ci.payload_bytes = payload;
    packet_bytes = Ci.radd payload header;
    header_bytes = header;
    state_entries =
      (fun s ->
        match List.find_opt (fun o -> o.Ir.st_name = s) p.Ir.states with
        | Some o -> Ci.rconst (float_of_int o.Ir.st_entries)
        | None -> Ci.rzero);
    opaque_trip = { Ci.rlo = 1.; rhi = Float.infinity };
  }

(* Trip range of a loop: zero iterations admissible at the fast end,
   at least one charged at the slow end. *)
let trip_range sizes trip =
  let v = Ci.eval_size sizes trip in
  I.make (Float.max 0. v.Ci.rlo) (Float.max 1. v.Ci.rhi)

(* ---- packet types -------------------------------------------------- *)

(* Facts each traffic class pins down; "tcp" leaves the SYN flag free,
   so its interval also covers the SYN sub-population (the simulator's
   tcp mean includes SYNs). *)
let packet_types : (string * Paths.fact list) list =
  [
    ("all", []);
    ("tcp", [ (Ir.G_proto 6, true) ]);
    ("tcp-syn", [ (Ir.G_proto 6, true); (Ir.G_flag 0x2, true) ]);
    ("udp", [ (Ir.G_proto 17, true) ]);
    ("other", [ (Ir.G_proto 6, false); (Ir.G_proto 17, false) ]);
  ]

(* ---- execution-count analysis -------------------------------------- *)

module Solver = Dfa.Make (I)

(* Blocks inside a structured loop body: reachable from [body] without
   passing through the header or the exit (same notion as
   Dataflow.Build). *)
let body_blocks (p : Ir.program) ~header ~body ~exit =
  let seen = ref [] in
  let rec go bid =
    if bid <> header && bid <> exit && not (List.mem bid !seen) then begin
      seen := bid :: !seen;
      List.iter go (Ir.successors (Ir.block p bid).Ir.term)
    end
  in
  go body;
  !seen

(* Edges from inside a loop body back to its header. *)
let back_edge_set (p : Ir.program) =
  let set = Hashtbl.create 8 in
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Loop { body; exit; trip = _ } ->
          List.iter
            (fun m -> Hashtbl.replace set (m, b.Ir.bid) ())
            (body_blocks p ~header:b.Ir.bid ~body ~exit)
      | _ -> ())
    p.Ir.blocks;
  set

(* Per-block execution-count intervals for packets satisfying [facts].
   Entry executes once; a Loop header's body edge multiplies by the
   trip range; branch arms the facts contradict become bottom, arms the
   facts leave open keep their ceiling but may be skipped. *)
let exec_counts (p : Ir.program) ~sizes ~facts =
  let back = back_edge_set p in
  let edge ~(src : Ir.block) ~dst x =
    if I.is_bottom x then x
    else if Hashtbl.mem back (src.Ir.bid, dst) then I.bottom
    else
      match src.Ir.term with
      | Ir.Cond { guard; then_; else_ } when then_ <> else_ ->
          let pol = dst = then_ in
          if Paths.assuming facts guard pol = None then I.bottom
          else if Paths.assuming facts guard (not pol) = None then x
          else I.make 0. (I.hi x)
      | Ir.Loop { body; exit = _; trip } when dst = body ->
          I.mul x (trip_range sizes trip)
      | _ -> x
  in
  match
    Solver.solve ~edge ~widen:I.widen ~init:(I.const 1.)
      ~transfer:(fun _ x -> x)
      p
  with
  | Solver.Fixpoint r -> Ok r.Solver.input
  | Solver.Budget_exhausted _ ->
      (* Degrade to the conservative top count: bounds stay sound, just
         useless, and the caller reports the condition. *)
      Error (Array.map (fun _ -> I.make 0. Float.infinity) p.Ir.blocks)

(* A loop header executes once more than its body iterates (the guard
   re-evaluation that exits), and the count analysis deliberately cuts
   the re-entry edge — so header blocks get an extra (trip + 1) factor
   in the cost sum. *)
let header_multiplier sizes (b : Ir.block) =
  match b.Ir.term with
  | Ir.Loop { trip; _ } -> I.add (trip_range sizes trip) (I.const 1.)
  | _ -> I.const 1.

(* ---- results ------------------------------------------------------- *)

type axes = {
  a_queue : I.t;
  a_compute : I.t;  (* general-core service + accelerator service *)
  a_accel_wait : I.t;
  a_mem : I.t;
  a_wire : I.t;
}

type type_bounds = {
  tb_type : string;
  tb_axes : axes;
  tb_service : I.t;  (* compute + mem + wire: per-packet work, no contention *)
  tb_total : I.t;    (* service + queue and accel-wait allowances *)
}

type t = {
  bt_prog : string;
  bt_target : string;
  bt_freq_mhz : int;
  bt_per_type : type_bounds list;
  bt_unbounded_loops : int list;  (* headers with no derivable trip bound *)
  bt_exhausted : bool;            (* count analysis ran out of budget *)
}

let find t ptype =
  List.find_opt (fun b -> b.tb_type = ptype) t.bt_per_type

let cfg_reachable (p : Ir.program) =
  let n = Array.length p.Ir.blocks in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then (
      seen.(b) <- true;
      List.iter go (Ir.successors p.Ir.blocks.(b).Ir.term))
  in
  go p.Ir.entry;
  seen

(* Reachable loop headers whose trip range has no finite ceiling. *)
let unbounded_loops ?(payload_max = mtu_payload) (p : Ir.program) =
  let sizes = sizes_for p ~ptype:"all" ~payload_max in
  let reachable = cfg_reachable p in
  Array.to_list p.Ir.blocks
  |> List.filter_map (fun (b : Ir.block) ->
         match b.Ir.term with
         | Ir.Loop { trip; _ }
           when reachable.(b.Ir.bid)
                && not (Float.is_finite (I.hi (trip_range sizes trip))) ->
             Some b.Ir.bid
         | _ -> None)

(* ---- the analysis -------------------------------------------------- *)

let iv_of_r (r : Ci.r) = I.make r.Ci.rlo r.Ci.rhi

let analyze ?(payload_max = mtu_payload) ~(lnic : L.Graph.t) (p : Ir.program) =
  let df = D.Build.of_ir p in
  let nodes_by_block = Hashtbl.create 32 in
  Array.iter
    (fun (n : D.Node.t) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt nodes_by_block n.D.Node.block)
      in
      Hashtbl.replace nodes_by_block n.D.Node.block (cur @ [ n ]))
    df.D.Graph.nodes;
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) p.Ir.states with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let shared_regions =
    Array.to_list lnic.L.Graph.memories
    |> List.filter (fun (m : L.Memory.t) -> m.L.Memory.level <> L.Memory.Local)
  in
  let state_regions s =
    let fits =
      List.filter
        (fun (m : L.Memory.t) -> footprint s <= m.L.Memory.size_bytes)
        shared_regions
    in
    List.map
      (fun (m : L.Memory.t) -> m.L.Memory.id)
      (if fits = [] then shared_regions else fits)
  in
  let packet_regions =
    List.filter
      (fun (m : L.Memory.t) ->
        match m.L.Memory.level with
        | L.Memory.Cluster | L.Memory.External -> true
        | _ -> false)
      shared_regions
    |> List.map (fun (m : L.Memory.t) -> m.L.Memory.id)
  in
  let units =
    L.Graph.placement_classes lnic
    |> List.map (fun (c : L.Graph.placement_class) -> c.L.Graph.rep)
  in
  let freq_mhz =
    match L.Graph.general_cores lnic with
    | u :: _ -> u.L.Unit_.freq_mhz
    | [] -> 1
  in
  let threads = max 1 (L.Graph.total_threads lnic) in
  let queue_cap =
    Array.to_list lnic.L.Graph.hubs
    |> List.find_opt (fun (h : L.Hub.t) -> h.L.Hub.kind = `Ingress)
    |> Option.fold ~none:0 ~some:(fun (h : L.Hub.t) -> h.L.Hub.queue_capacity)
  in
  let exhausted = ref false in
  let per_type =
    List.map
      (fun (ptype, facts) ->
        let sizes = sizes_for p ~ptype ~payload_max in
        let ctx =
          { Ci.lnic; units; state_regions;
            packet_regions =
              (if packet_regions = [] then
                 List.map (fun (m : L.Memory.t) -> m.L.Memory.id) shared_regions
               else packet_regions);
            state_footprint = footprint; sizes }
        in
        let counts =
          match exec_counts p ~sizes ~facts with
          | Ok c -> c
          | Error c ->
              exhausted := true;
              c
        in
        (* Per-axis service sums: count x trip-free node envelope.  A
           node no unit can execute contributes the conservative
           [0, inf) — the mapping would have rejected the program, but
           bounds must not claim a finite ceiling for it. *)
        let compute = ref I.bottom
        and mem = ref I.bottom
        and accel = ref I.bottom in
        let cadd cell v = cell := I.add (I.join !cell (I.const 0.)) v in
        let emit_always = ref false and emit_ever = ref false in
        Array.iter
          (fun (b : Ir.block) ->
            let c =
              I.mul counts.(b.Ir.bid) (header_multiplier sizes b)
            in
            if not (I.is_bottom c) then
              List.iter
                (fun (n : D.Node.t) ->
                  let bd =
                    match Ci.node_r ~with_trip:false ctx n with
                    | Some bd -> bd
                    | None ->
                        { Ci.i_compute = { Ci.rlo = 0.; rhi = Float.infinity };
                          i_mem = Ci.rzero; i_accel = Ci.rzero }
                  in
                  cadd compute (I.mul c (iv_of_r bd.Ci.i_compute));
                  cadd mem (I.mul c (iv_of_r bd.Ci.i_mem));
                  cadd accel (I.mul c (iv_of_r bd.Ci.i_accel));
                  match n.D.Node.kind with
                  | D.Node.N_vcall v when v.Ir.vc = L.Params.V_emit ->
                      if I.hi c > 0. then emit_ever := true;
                      if I.lo c >= 1. then emit_always := true
                  | _ -> ())
                (Option.value ~default:[]
                   (Hashtbl.find_opt nodes_by_block b.Ir.bid)))
          p.Ir.blocks;
        let orz v = I.join v (I.const 0.) in
        let compute = orz !compute
        and mem = orz !mem
        and accel = orz !accel in
        let rx = iv_of_r (Ci.wire_r lnic ~packet_bytes:sizes.Ci.packet_bytes ~dir:`Rx) in
        let tx_r = Ci.wire_r lnic ~packet_bytes:sizes.Ci.packet_bytes ~dir:`Tx in
        let tx =
          I.make
            (if !emit_always then tx_r.Ci.rlo else 0.)
            (if !emit_ever then tx_r.Ci.rhi else 0.)
        in
        let wire = I.add rx tx in
        (* Fold accelerator service into compute — the basis the
           calibration ledger compares on (the simulator attributes
           Accel_use to its compute column). *)
        let compute = I.add compute accel in
        let service = I.add compute (I.add mem wire) in
        (* Contention allowances.  Queue: an admitted packet finds at
           most capacity-1 packets ahead, served by [threads] workers.
           Accel wait: every thread's packet may be queued on the same
           accelerator ahead of ours. *)
        let hi_service = I.hi service in
        let queue_hi =
          if queue_cap <= 1 then 0.
          else
            Float.of_int ((queue_cap - 1 + threads - 1) / threads) *. hi_service
        in
        let accel_wait_hi =
          if I.hi accel > 0. then float_of_int threads *. I.hi accel else 0.
        in
        let a_queue = I.make 0. queue_hi in
        let a_accel_wait = I.make 0. accel_wait_hi in
        let total = I.add service (I.add a_queue a_accel_wait) in
        {
          tb_type = ptype;
          tb_axes =
            { a_queue; a_compute = compute; a_accel_wait; a_mem = mem;
              a_wire = wire };
          tb_service = service;
          tb_total = total;
        })
      packet_types
  in
  {
    bt_prog = p.Ir.prog_name;
    bt_target = lnic.L.Graph.name;
    bt_freq_mhz = freq_mhz;
    bt_per_type = per_type;
    bt_unbounded_loops = unbounded_loops ~payload_max p;
    bt_exhausted = !exhausted;
  }

(* ---- SLO verdict --------------------------------------------------- *)

type verdict = Provably_meets | Provably_violates | Unclear

let verdict_name = function
  | Provably_meets -> "provably-meets"
  | Provably_violates -> "provably-violates"
  | Unclear -> "unclear"

let slo_cycles t ~slo_p99_us = slo_p99_us *. float_of_int t.bt_freq_mhz

(* Every packet's latency lies in [total.lo, total.hi], so p99 <= hi
   (meets is provable) and p99 >= lo over every packet (a violated lo
   on the all-type row means no packet can make the SLO). *)
let verdict t ~slo_p99_us =
  match find t "all" with
  | None -> Unclear
  | Some b ->
      let slo = slo_cycles t ~slo_p99_us in
      if I.hi b.tb_total <= slo then Provably_meets
      else if I.lo b.tb_total > slo then Provably_violates
      else Unclear

(* ---- lints --------------------------------------------------------- *)

let default_gap_ratio = 256.

let lint ?lnic ?slo_p99_us ?(gap_ratio = default_gap_ratio) (p : Ir.program) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun bid ->
      emit
        (Diag.make ~block:bid ~code:"CLARA401" ~severity:Diag.Error
           ~pass:"bounds"
           (Printf.sprintf
              "loop at b%d has no statically derivable iteration bound; \
               worst-case latency is unbounded (use a for-loop over a \
               payload- or table-sized range)"
              bid)))
    (unbounded_loops p);
  (match lnic with
  | None -> ()
  | Some lnic -> (
      let b = analyze ~lnic p in
      if b.bt_exhausted then
        emit
          (Diag.make ~code:"CLARA204" ~severity:Diag.Warn ~pass:"bounds"
             "execution-count analysis exhausted its iteration budget; \
              bounds degraded to [0, inf)");
      (match find b "all" with
      | Some row ->
          let s = row.tb_service in
          if
            b.bt_unbounded_loops = []
            && I.is_finite s
            && I.lo s > 0.
            && I.hi s /. I.lo s > gap_ratio
          then
            emit
              (Diag.make ~code:"CLARA402" ~severity:Diag.Warn ~pass:"bounds"
                 (Printf.sprintf
                    "performance unclarity: static service bounds span a \
                     %.0fx ratio (%.0f..%.0f cycles), above the %.0fx \
                     threshold — latency depends heavily on data-dependent \
                     paths or cache/table regimes"
                    (I.hi s /. I.lo s) (I.lo s) (I.hi s) gap_ratio))
      | None -> ());
      match slo_p99_us with
      | None -> ()
      | Some slo ->
          if verdict b ~slo_p99_us:slo = Provably_violates then
            let row = Option.get (find b "all") in
            emit
              (Diag.make ~code:"CLARA403" ~severity:Diag.Error ~pass:"bounds"
                 (Printf.sprintf
                    "provable SLO violation: every packet needs at least \
                     %.0f cycles (%.2f us on %s), above the p99 SLO of %.2f \
                     us"
                    (I.lo row.tb_total)
                    (I.lo row.tb_total /. float_of_int b.bt_freq_mhz)
                    b.bt_target slo))));
  List.rev !diags

(* ---- rendering ----------------------------------------------------- *)

let us_of t cycles = cycles /. float_of_int t.bt_freq_mhz

let axis_list (a : axes) =
  [ ("queue", a.a_queue); ("compute", a.a_compute);
    ("accel_wait", a.a_accel_wait); ("mem", a.a_mem); ("wire", a.a_wire) ]

let to_json t =
  let module J = Clara_util.Json in
  J.Obj
    [
      ("program", J.String t.bt_prog);
      ("target", J.String t.bt_target);
      ("freq_mhz", J.Int t.bt_freq_mhz);
      ( "unbounded_loops",
        J.List (List.map (fun b -> J.Int b) t.bt_unbounded_loops) );
      ( "types",
        J.Obj
          (List.map
             (fun b ->
               ( b.tb_type,
                 J.Obj
                   (List.map
                      (fun (n, v) -> (n, I.to_json v))
                      (axis_list b.tb_axes)
                   @ [
                       ("service", I.to_json b.tb_service);
                       ("total", I.to_json b.tb_total);
                     ]) ))
             t.bt_per_type) );
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>static bounds %s on %s (cycles @@ %d MHz):@,"
    t.bt_prog t.bt_target t.bt_freq_mhz;
  Format.fprintf fmt "  %-8s %-22s %-22s %-22s@," "type" "service" "total"
    "total (us)";
  List.iter
    (fun b ->
      let us = I.scale (1. /. float_of_int t.bt_freq_mhz) b.tb_total in
      Format.fprintf fmt "  %-8s %-22s %-22s %-22s@," b.tb_type
        (Format.asprintf "%a" I.pp b.tb_service)
        (Format.asprintf "%a" I.pp b.tb_total)
        (Format.asprintf "%a" I.pp us))
    t.bt_per_type;
  if t.bt_unbounded_loops <> [] then
    Format.fprintf fmt "  unbounded loops at: %s@,"
      (String.concat ", "
         (List.map (fun b -> Printf.sprintf "b%d" b) t.bt_unbounded_loops));
  Format.fprintf fmt "@]"
