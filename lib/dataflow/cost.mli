(** The cost model shared by the mapping ILP and the predictor.

    Prices a CIR instruction or a dataflow node on a given compute unit,
    under a given memory placement (Γ) and concrete sizes.  This is where
    the paper's per-component observations meet: op-class cycle tables,
    accelerator cost functions, region access latencies with NUMA weights,
    cache hits for small footprints, FPU emulation on cores without
    hardware floats. *)

(** Concrete values for symbolic sizes, from a workload average (mapping)
    or an individual packet (prediction). *)
type sizes = {
  payload_bytes : float;
  packet_bytes : float;
  header_bytes : float;
  state_entries : string -> float;
  opaque_trip : float;  (** Assumed trips for un-coarsened while loops. *)
}

val eval_size : sizes -> Clara_cir.Ir.size_expr -> float

val cache_locality : float ref
(** The model's one free parameter: the locality discount applied to
    cache hit ratios (default 0.85, calibrated so Figure 3a's error
    matches the paper's ~12%).  The [ablations] bench sweeps it. *)

type ctx = {
  lnic : Clara_lnic.Graph.t;
  exec_unit : Clara_lnic.Unit_.t;
  state_region : string -> int;   (** Γ: state object → memory id. *)
  state_footprint : string -> int;  (** Bytes, for cache-fit decisions. *)
  packet_region : int;            (** Memory id holding packet data. *)
  sizes : sizes;
}

val mem_access_cycles :
  ctx -> mode:[ `Read | `Write | `Atomic ] -> mem_id:int -> footprint:int -> float option
(** Region base latency (cache-adjusted when the footprint fits) plus the
    NUMA weight of the unit's bus; [None] when the unit cannot reach the
    region. *)

val instr_cycles : ctx -> Clara_cir.Ir.instr -> float option
(** [None] when the unit cannot execute the instruction (e.g. general
    compute on an accelerator, or a vcall the accelerator does not
    implement). *)

val node_cycles : ctx -> Node.t -> float option
(** Sum over the node's instructions, multiplied by its loop trip. *)

(** {2 Component breakdown} — the same prices split into where the
    cycles go, for latency attribution. *)

type breakdown = {
  b_compute : float;  (** Core op/vcall base cost. *)
  b_mem : float;      (** Memory-region access charges. *)
  b_accel : float;    (** Accelerator service time. *)
}

val node_breakdown : ctx -> Node.t -> breakdown option
(** Mirrors {!node_cycles} ([None] in exactly the same cases).  The
    fields sum to {!node_cycles} up to float rounding; consumers needing
    an exact decomposition should recompute compute as the residual
    [node_cycles - b_mem - b_accel]. *)
