module Ir = Clara_cir.Ir
module L = Clara_lnic
module P = Clara_lnic.Params

type sizes = {
  payload_bytes : float;
  packet_bytes : float;
  header_bytes : float;
  state_entries : string -> float;
  opaque_trip : float;
}

let rec eval_size sizes = function
  | Ir.S_const n -> float_of_int n
  | Ir.S_payload -> sizes.payload_bytes
  | Ir.S_packet -> sizes.packet_bytes
  | Ir.S_header -> sizes.header_bytes
  | Ir.S_state_entries s -> sizes.state_entries s
  | Ir.S_scaled (e, k) -> Float.max 0. (k *. eval_size sizes e)
  | Ir.S_plus (e, k) -> Float.max 0. (eval_size sizes e +. float_of_int k)
  | Ir.S_opaque -> sizes.opaque_trip

type ctx = {
  lnic : L.Graph.t;
  exec_unit : L.Unit_.t;
  state_region : string -> int;
  state_footprint : string -> int;
  packet_region : int;
  sizes : sizes;
}

(* Caches are shared (packet spill, other flows), so even a footprint that
   fits is not always resident: the effective latency mixes hit and miss
   with a locality-discounted hit ratio.  The discount keeps Γ honest:
   with a full-hit assumption the EMEM's 3 MB cache (150 cyc) would
   always beat the IMEM (250 cyc); with the discount, random-access
   state (hash tables) still prefers the IMEM while scan-style walks
   (whose reuse is near-perfect) are only mildly over-charged — the
   residual is visible as Figure 3a's ~10% overprediction. *)
let cache_locality = ref 0.85

let mem_access_cycles ctx ~mode ~mem_id ~footprint =
  match L.Graph.access_weight ctx.lnic ~unit_id:ctx.exec_unit.L.Unit_.id ~mem_id with
  | None -> None
  | Some weight ->
      let m = L.Graph.memory ctx.lnic mem_id in
      let flat =
        match mode with
        | `Read -> m.L.Memory.read_cycles
        | `Write -> m.L.Memory.write_cycles
        | `Atomic -> m.L.Memory.atomic_cycles
      in
      let base =
        match (m.L.Memory.cache, mode) with
        | Some c, (`Read | `Write) ->
            let fit =
              if footprint <= 0 then 1.
              else
                Float.min 1.
                  (float_of_int c.L.Memory.cache_bytes /. float_of_int footprint)
            in
            let h = !cache_locality *. fit in
            (h *. float_of_int c.L.Memory.hit_cycles)
            +. ((1. -. h) *. float_of_int flat)
        | _ -> float_of_int flat
      in
      Some (base +. float_of_int weight)

(* Fastest reachable region of level Local (for register/stack traffic);
   falls back to the fastest reachable region of any level. *)
let local_region ctx =
  let reach = L.Graph.reachable_memories ctx.lnic ~unit_id:ctx.exec_unit.L.Unit_.id in
  match
    List.find_opt (fun (m, _) -> m.L.Memory.level = L.Memory.Local) reach
  with
  | Some (m, _) -> Some m.L.Memory.id
  | None -> ( match reach with (m, _) :: _ -> Some m.L.Memory.id | [] -> None)

let loc_access ctx ~mode (loc : Ir.loc) =
  match loc with
  | Ir.L_local -> (
      match local_region ctx with
      | None -> None
      | Some mem_id -> mem_access_cycles ctx ~mode ~mem_id ~footprint:0)
  | Ir.L_packet ->
      mem_access_cycles ctx ~mode ~mem_id:ctx.packet_region
        ~footprint:(int_of_float ctx.sizes.packet_bytes)
  | Ir.L_state s ->
      mem_access_cycles ctx ~mode ~mem_id:(ctx.state_region s)
        ~footprint:(ctx.state_footprint s)

let vcall_cycles ctx (v : Ir.vcall_info) =
  let params = ctx.lnic.L.Graph.params in
  let n = eval_size ctx.sizes v.Ir.size in
  match ctx.exec_unit.L.Unit_.kind with
  | L.Unit_.Accelerator kind -> (
      match P.accel_vcall_cost params kind v.Ir.vc with
      | None -> None
      | Some f ->
          (* Accelerators keep their operands in dedicated SRAM (e.g. the
             flow cache); no extra per-access memory charge. *)
          Some (L.Cost_fn.eval f n))
  | L.Unit_.General_core _ -> (
      match P.core_vcall_cost params v.Ir.vc with
      | None -> None
      | Some f -> (
          let base = L.Cost_fn.eval f n in
          match v.Ir.state with
          | None -> Some base
          | Some st -> (
              let reads = eval_size ctx.sizes v.Ir.state_reads in
              let writes = eval_size ctx.sizes v.Ir.state_writes in
              let r = loc_access ctx ~mode:`Read (Ir.L_state st) in
              let w = loc_access ctx ~mode:`Write (Ir.L_state st) in
              match (r, w) with
              | Some rc, Some wc -> Some (base +. (reads *. rc) +. (writes *. wc))
              | _ -> None)))

let instr_cycles ctx (i : Ir.instr) =
  let params = ctx.lnic.L.Graph.params in
  match i with
  | Ir.Vcall v -> vcall_cycles ctx v
  | Ir.Op cls -> (
      match ctx.exec_unit.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } -> Some (P.op_cost params cls ~has_fpu))
  | Ir.Load loc -> (
      match ctx.exec_unit.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } ->
          Option.map
            (fun m -> m +. P.op_cost params P.Load ~has_fpu)
            (loc_access ctx ~mode:`Read loc))
  | Ir.Store loc -> (
      match ctx.exec_unit.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } ->
          Option.map
            (fun m -> m +. P.op_cost params P.Store ~has_fpu)
            (loc_access ctx ~mode:`Write loc))
  | Ir.Atomic_op loc -> (
      match ctx.exec_unit.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } ->
          Option.map
            (fun m -> m +. P.op_cost params P.Atomic ~has_fpu)
            (loc_access ctx ~mode:`Atomic loc))

(* Component breakdown of the same prices, for latency attribution.
   Mirrors [vcall_cycles]/[instr_cycles]/[node_cycles] rather than
   refactoring them: the totals those produce are summed in a specific
   order by the predictor, and changing that order would drift existing
   predictions by float rounding.  Consumers that need the components to
   sum exactly to [node_cycles] should take compute as the residual. *)

type breakdown = { b_compute : float; b_mem : float; b_accel : float }

let bzero = { b_compute = 0.; b_mem = 0.; b_accel = 0. }

let badd a b =
  { b_compute = a.b_compute +. b.b_compute;
    b_mem = a.b_mem +. b.b_mem;
    b_accel = a.b_accel +. b.b_accel }

let bscale k b =
  { b_compute = k *. b.b_compute; b_mem = k *. b.b_mem; b_accel = k *. b.b_accel }

let vcall_breakdown ctx (v : Ir.vcall_info) =
  let params = ctx.lnic.L.Graph.params in
  let n = eval_size ctx.sizes v.Ir.size in
  match ctx.exec_unit.L.Unit_.kind with
  | L.Unit_.Accelerator kind -> (
      match P.accel_vcall_cost params kind v.Ir.vc with
      | None -> None
      | Some f -> Some { bzero with b_accel = L.Cost_fn.eval f n })
  | L.Unit_.General_core _ -> (
      match P.core_vcall_cost params v.Ir.vc with
      | None -> None
      | Some f -> (
          let base = L.Cost_fn.eval f n in
          match v.Ir.state with
          | None -> Some { bzero with b_compute = base }
          | Some st -> (
              let reads = eval_size ctx.sizes v.Ir.state_reads in
              let writes = eval_size ctx.sizes v.Ir.state_writes in
              let r = loc_access ctx ~mode:`Read (Ir.L_state st) in
              let w = loc_access ctx ~mode:`Write (Ir.L_state st) in
              match (r, w) with
              | Some rc, Some wc ->
                  Some
                    { bzero with
                      b_compute = base;
                      b_mem = (reads *. rc) +. (writes *. wc) }
              | _ -> None)))

let instr_breakdown ctx (i : Ir.instr) =
  let params = ctx.lnic.L.Graph.params in
  let core_split op loc ~mode =
    match ctx.exec_unit.L.Unit_.kind with
    | L.Unit_.Accelerator _ -> None
    | L.Unit_.General_core { has_fpu; _ } ->
        Option.map
          (fun m -> { bzero with b_compute = P.op_cost params op ~has_fpu; b_mem = m })
          (loc_access ctx ~mode loc)
  in
  match i with
  | Ir.Vcall v -> vcall_breakdown ctx v
  | Ir.Op cls -> (
      match ctx.exec_unit.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } ->
          Some { bzero with b_compute = P.op_cost params cls ~has_fpu })
  | Ir.Load loc -> core_split P.Load loc ~mode:`Read
  | Ir.Store loc -> core_split P.Store loc ~mode:`Write
  | Ir.Atomic_op loc -> core_split P.Atomic loc ~mode:`Atomic

let node_breakdown ctx (n : Node.t) =
  let body =
    match n.Node.kind with
    | Node.N_vcall v -> vcall_breakdown ctx v
    | Node.N_compute is ->
        List.fold_left
          (fun acc i ->
            match (acc, instr_breakdown ctx i) with
            | Some a, Some c -> Some (badd a c)
            | _ -> None)
          (Some bzero) is
  in
  match body with
  | None -> None
  | Some b ->
      let trip =
        match n.Node.loop_trip with
        | None -> 1.
        | Some t -> Float.max 1. (eval_size ctx.sizes t)
      in
      Some (bscale trip b)

let node_cycles ctx (n : Node.t) =
  let body =
    match n.Node.kind with
    | Node.N_vcall v -> vcall_cycles ctx v
    | Node.N_compute is ->
        List.fold_left
          (fun acc i ->
            match (acc, instr_cycles ctx i) with
            | Some a, Some c -> Some (a +. c)
            | _ -> None)
          (Some 0.) is
  in
  match body with
  | None -> None
  | Some c ->
      let trip =
        match n.Node.loop_trip with
        | None -> 1.
        | Some t -> Float.max 1. (eval_size ctx.sizes t)
      in
      Some (c *. trip)
