(** {!Cost} lifted from scalars to ranges.

    Every price becomes a closed range [[rlo, rhi]] covering the cost
    under any admissible execution: any candidate unit, any candidate
    memory region, cache hit through miss, any packet size in the
    workload envelope, and — for stateful vcalls — the flow-cache hit
    regime at the fast end and the miss/upcall/table-walk regime at the
    slow end.  Mapping-independent by design: {!Clara_analysis.Bounds}
    runs before ILP placement, so a node's range is the hull over every
    unit that could execute it.

    Ranges are plain float pairs (not {!Clara_analysis.Interval}) to
    keep the analysis -> dataflow dependency one-way; upper endpoints
    may be [infinity] (an [S_opaque] loop trip). *)

type r = { rlo : float; rhi : float }

val rconst : float -> r
val rzero : r
val radd : r -> r -> r
val rjoin : r -> r -> r
(** Hull. *)

val rmul : r -> r -> r
(** Non-negative ranges; [0 * inf = 0]. *)

val rfinite : r -> bool

type sizes = {
  payload_bytes : r;
  packet_bytes : r;
  header_bytes : r;
  state_entries : string -> r;
  opaque_trip : r;  (** Typically [[1, inf)]: no derivable bound. *)
}

val eval_size : sizes -> Clara_cir.Ir.size_expr -> r

val cost_fn_r : Clara_lnic.Cost_fn.t -> r -> r
(** Hull of the endpoint evaluations; an infinite size yields the
    function's limit (infinite iff it actually grows with [n]). *)

type ctx = {
  lnic : Clara_lnic.Graph.t;
  units : Clara_lnic.Unit_.t list;     (** Candidate execution units. *)
  state_regions : string -> int list;  (** Candidate regions per state. *)
  packet_regions : int list;           (** Candidate packet-data regions. *)
  state_footprint : string -> int;
  sizes : sizes;
}

type breakdown = { i_compute : r; i_mem : r; i_accel : r }

val bzero : breakdown
val badd : breakdown -> breakdown -> breakdown
val bjoin : breakdown -> breakdown -> breakdown
val btotal : breakdown -> r

val instr_r : ctx -> Clara_cir.Ir.instr -> breakdown option
(** Hull over the candidate units; [None] when no candidate unit can
    execute the instruction. *)

val node_r : ?with_trip:bool -> ctx -> Node.t -> breakdown option
(** Node envelope.  With [with_trip] (default) the loop-trip range
    multiplies the body: lower end admits zero iterations, upper end is
    floored at one execution.  Pass [~with_trip:false] when the caller
    accounts for loop multiplicity itself (e.g. through execution-count
    intervals). *)

val trip_r : ctx -> Node.t -> r

val wire_r :
  Clara_lnic.Graph.t -> packet_bytes:r -> dir:[ `Rx | `Tx ] -> r
(** DMA serialization + hub per-packet price over the size envelope. *)
