(* Interval lifting of {!Cost}: every scalar price becomes a closed
   range [rlo, rhi] covering the price under any admissible execution —
   any candidate execution unit, any candidate memory region, cache hit
   or miss, any packet size in the workload envelope, and (for stateful
   vcalls) the flow-cache hit regime on the fast end and the
   miss/upcall/table-walk regime on the slow end.

   The module deliberately does not depend on the mapping: Bounds runs
   before (and independently of) ILP placement, so a node's range is
   the envelope over every unit that could execute it.  The ranges use
   a plain float pair rather than {!Clara_analysis.Interval} to keep
   the dependency arrow analysis -> dataflow one-way. *)

module Ir = Clara_cir.Ir
module L = Clara_lnic
module P = Clara_lnic.Params

type r = { rlo : float; rhi : float }

let rconst v = { rlo = v; rhi = v }
let rzero = rconst 0.
let radd a b = { rlo = a.rlo +. b.rlo; rhi = a.rhi +. b.rhi }
let rjoin a b = { rlo = Float.min a.rlo b.rlo; rhi = Float.max a.rhi b.rhi }

(* Ranges here are non-negative, so products only need the endpoint
   pairing — with 0 * inf = 0 (a zero-trip loop body costs nothing even
   when its per-iteration price is unbounded). *)
let mulf a b = if a = 0. || b = 0. then 0. else a *. b
let rmul a b = { rlo = mulf a.rlo b.rlo; rhi = mulf a.rhi b.rhi }
let rclamp0 a = { rlo = Float.max 0. a.rlo; rhi = Float.max 0. a.rhi }
let rfinite a = Float.is_finite a.rlo && Float.is_finite a.rhi

type sizes = {
  payload_bytes : r;
  packet_bytes : r;
  header_bytes : r;
  state_entries : string -> r;
  opaque_trip : r;  (* typically [1, inf): no derivable bound *)
}

let rec eval_size sizes = function
  | Ir.S_const n -> rconst (float_of_int n)
  | Ir.S_payload -> sizes.payload_bytes
  | Ir.S_packet -> sizes.packet_bytes
  | Ir.S_header -> sizes.header_bytes
  | Ir.S_state_entries s -> sizes.state_entries s
  | Ir.S_scaled (e, k) ->
      let v = eval_size sizes e in
      rclamp0 (if k >= 0. then rmul (rconst k) v
               else { rlo = k *. v.rhi; rhi = k *. v.rlo })
  | Ir.S_plus (e, k) ->
      rclamp0 (radd (eval_size sizes e) (rconst (float_of_int k)))
  | Ir.S_opaque -> sizes.opaque_trip

(* Cost functions are evaluated over a size range by taking the hull of
   the endpoint evaluations; an infinite upper size yields the
   function's limit (infinite iff it actually grows). *)
let cost_fn_r f (n : r) =
  let lo_v = L.Cost_fn.eval f (Float.max 0. n.rlo) in
  let hi_v =
    if Float.is_finite n.rhi then L.Cost_fn.eval f (Float.max 0. n.rhi)
    else if f.L.Cost_fn.per_unit > 0. || f.L.Cost_fn.log2_coeff > 0. then
      Float.infinity
    else f.L.Cost_fn.base
  in
  rclamp0 { rlo = Float.min lo_v hi_v; rhi = Float.max lo_v hi_v }

type ctx = {
  lnic : L.Graph.t;
  units : L.Unit_.t list;              (* candidate execution units *)
  state_regions : string -> int list;  (* candidate regions per state *)
  packet_regions : int list;           (* candidate packet-data regions *)
  state_footprint : string -> int;
  sizes : sizes;
}

(* The simulator charges a cross-island penalty on remote CTM accesses
   that the per-region prices do not carry; fold the largest access-link
   weight into every access's upper endpoint so the envelope covers it. *)
let island_slack lnic =
  List.fold_left
    (fun acc (l : L.Link.t) ->
      match l.L.Link.kind with
      | L.Link.Access (_, _) -> Float.max acc (float_of_int l.L.Link.weight_cycles)
      | _ -> acc)
    0. lnic.L.Graph.links

(* One access by [u] to region [mem_id]: best case a cache hit, worst
   case the flat (miss) price, both plus the link weight.  No cache-fit
   blending — the blend always lies between the two endpoints. *)
let region_access_r ctx (u : L.Unit_.t) ~mode ~mem_id =
  match L.Graph.access_weight ctx.lnic ~unit_id:u.L.Unit_.id ~mem_id with
  | None -> None
  | Some weight ->
      let m = L.Graph.memory ctx.lnic mem_id in
      let flat =
        float_of_int
          (match mode with
          | `Read -> m.L.Memory.read_cycles
          | `Write -> m.L.Memory.write_cycles
          | `Atomic -> m.L.Memory.atomic_cycles)
      in
      let best =
        match (m.L.Memory.cache, mode) with
        | Some c, (`Read | `Write) ->
            Float.min (float_of_int c.L.Memory.hit_cycles) flat
        | _ -> flat
      in
      let w = float_of_int weight in
      Some
        { rlo = best +. w; rhi = flat +. w +. island_slack ctx.lnic }

(* Envelope over a candidate region list; [None] if the unit reaches
   none of them. *)
let regions_access_r ctx u ~mode regions =
  List.filter_map (fun mem_id -> region_access_r ctx u ~mode ~mem_id) regions
  |> function
  | [] -> None
  | x :: xs -> Some (List.fold_left rjoin x xs)

let local_region ctx (u : L.Unit_.t) =
  let reach = L.Graph.reachable_memories ctx.lnic ~unit_id:u.L.Unit_.id in
  match
    List.find_opt (fun (m, _) -> m.L.Memory.level = L.Memory.Local) reach
  with
  | Some (m, _) -> Some m.L.Memory.id
  | None -> ( match reach with (m, _) :: _ -> Some m.L.Memory.id | [] -> None)

let loc_access_r ctx u ~mode (loc : Ir.loc) =
  match loc with
  | Ir.L_local -> (
      match local_region ctx u with
      | None -> None
      | Some mem_id -> region_access_r ctx u ~mode ~mem_id)
  | Ir.L_packet -> regions_access_r ctx u ~mode ctx.packet_regions
  | Ir.L_state s -> regions_access_r ctx u ~mode (ctx.state_regions s)

(* Per-axis component ranges, mirroring {!Cost.breakdown}. *)
type breakdown = { i_compute : r; i_mem : r; i_accel : r }

let bzero = { i_compute = rzero; i_mem = rzero; i_accel = rzero }

let badd a b =
  { i_compute = radd a.i_compute b.i_compute;
    i_mem = radd a.i_mem b.i_mem;
    i_accel = radd a.i_accel b.i_accel }

let bjoin a b =
  { i_compute = rjoin a.i_compute b.i_compute;
    i_mem = rjoin a.i_mem b.i_mem;
    i_accel = rjoin a.i_accel b.i_accel }

let bmul_r k b =
  { i_compute = rmul k b.i_compute;
    i_mem = rmul k b.i_mem;
    i_accel = rmul k b.i_accel }

let btotal b = radd b.i_compute (radd b.i_mem b.i_accel)

(* The slow-regime price of a stateful vcall: replayed on a general
   core with the state walked out of its worst candidate region.  The
   read count is floored at one cache line per 64 state bytes — a flow
   cache miss (or an LPM walk) traverses the backing table, not just
   the [state_reads] the fast path declares. *)
let software_replay_hi ctx (v : Ir.vcall_info) =
  let params = ctx.lnic.L.Graph.params in
  match (L.Graph.general_cores ctx.lnic, v.Ir.state) with
  | [], _ | _, None -> 0.
  | core :: _, Some st -> (
      match P.core_vcall_cost params v.Ir.vc with
      | None -> 0.
      | Some f ->
          let n = eval_size ctx.sizes v.Ir.size in
          let base = (cost_fn_r f n).rhi in
          let reads =
            Float.max
              (eval_size ctx.sizes v.Ir.state_reads).rhi
              (float_of_int (ctx.state_footprint st) /. 64.)
          in
          let writes = (eval_size ctx.sizes v.Ir.state_writes).rhi in
          let acc mode =
            match regions_access_r ctx core ~mode (ctx.state_regions st) with
            | Some a -> a.rhi
            | None -> 0.
          in
          base +. mulf reads (acc `Read) +. mulf writes (acc `Write))

let vcall_unit_r ctx (u : L.Unit_.t) (v : Ir.vcall_info) =
  let params = ctx.lnic.L.Graph.params in
  let n = eval_size ctx.sizes v.Ir.size in
  match u.L.Unit_.kind with
  | L.Unit_.Accelerator kind -> (
      match P.accel_vcall_cost params kind v.Ir.vc with
      | None -> None
      | Some f ->
          let hit = cost_fn_r f n in
          if v.Ir.state = None then Some { bzero with i_accel = hit }
          else
            (* Stateful accelerator work has two regimes: the flow-cache
               hit at the hardware price, and the miss paying the upcall
               (off-path targets) plus a software replay over the
               backing table.  The envelope spans both. *)
            let upcall = float_of_int (L.Graph.upcall_cycles ctx.lnic) in
            let miss_extra = upcall +. software_replay_hi ctx v in
            Some
              { bzero with
                i_accel = hit;
                i_compute = { rlo = 0.; rhi = miss_extra } })
  | L.Unit_.General_core _ -> (
      match P.core_vcall_cost params v.Ir.vc with
      | None -> None
      | Some f -> (
          let base = cost_fn_r f n in
          match v.Ir.state with
          | None -> Some { bzero with i_compute = base }
          | Some st -> (
              let reads = eval_size ctx.sizes v.Ir.state_reads in
              let writes = eval_size ctx.sizes v.Ir.state_writes in
              let r = regions_access_r ctx u ~mode:`Read (ctx.state_regions st) in
              let w = regions_access_r ctx u ~mode:`Write (ctx.state_regions st) in
              match (r, w) with
              | Some rc, Some wc ->
                  Some
                    { bzero with
                      i_compute = base;
                      i_mem = radd (rmul reads rc) (rmul writes wc) }
              | _ -> None)))

let instr_unit_r ctx (u : L.Unit_.t) (i : Ir.instr) =
  let params = ctx.lnic.L.Graph.params in
  let core_split op loc ~mode =
    match u.L.Unit_.kind with
    | L.Unit_.Accelerator _ -> None
    | L.Unit_.General_core { has_fpu; _ } ->
        Option.map
          (fun m ->
            { bzero with
              i_compute = rconst (P.op_cost params op ~has_fpu);
              i_mem = m })
          (loc_access_r ctx u ~mode loc)
  in
  match i with
  | Ir.Vcall v -> vcall_unit_r ctx u v
  | Ir.Op cls -> (
      match u.L.Unit_.kind with
      | L.Unit_.Accelerator _ -> None
      | L.Unit_.General_core { has_fpu; _ } ->
          Some { bzero with i_compute = rconst (P.op_cost params cls ~has_fpu) })
  | Ir.Load loc -> core_split P.Load loc ~mode:`Read
  | Ir.Store loc -> core_split P.Store loc ~mode:`Write
  | Ir.Atomic_op loc -> core_split P.Atomic loc ~mode:`Atomic

(* Envelope over the candidate units: the hull of the per-unit ranges
   for every unit that can execute the work.  [None] if no unit can. *)
let over_units ctx f =
  List.filter_map f ctx.units |> function
  | [] -> None
  | x :: xs -> Some (List.fold_left bjoin x xs)

let instr_r ctx i = over_units ctx (fun u -> instr_unit_r ctx u i)

let node_body_r ctx (n : Node.t) =
  match n.Node.kind with
  | Node.N_vcall v -> over_units ctx (fun u -> vcall_unit_r ctx u v)
  | Node.N_compute is ->
      List.fold_left
        (fun acc i ->
          match (acc, instr_r ctx i) with
          | Some a, Some c -> Some (badd a c)
          | _ -> None)
        (Some bzero) is

(* Trip range for a loop node: the lower end admits zero iterations
   (the workload may never enter the loop), the upper is floored at one
   so a node's range always covers its single-execution price. *)
let trip_r ctx (n : Node.t) =
  match n.Node.loop_trip with
  | None -> rconst 1.
  | Some t ->
      let v = eval_size ctx.sizes t in
      { rlo = Float.max 0. v.rlo; rhi = Float.max 1. v.rhi }

let node_r ?(with_trip = true) ctx (n : Node.t) =
  match node_body_r ctx n with
  | None -> None
  | Some b -> if with_trip then Some (bmul_r (trip_r ctx n) b) else Some b

(* Wire (DMA + hub) price range over the packet-size envelope. *)
let wire_r lnic ~(packet_bytes : r) ~dir =
  let params = lnic.L.Graph.params in
  let hub kind =
    match
      List.find_opt
        (fun (h : L.Hub.t) -> h.L.Hub.kind = kind)
        (Array.to_list lnic.L.Graph.hubs)
    with
    | Some h -> float_of_int h.L.Hub.per_packet_cycles
    | None -> 0.
  in
  match dir with
  | `Rx ->
      radd (cost_fn_r params.P.wire_ingress packet_bytes) (rconst (hub `Ingress))
  | `Tx ->
      radd (cost_fn_r params.P.wire_egress packet_bytes) (rconst (hub `Egress))
