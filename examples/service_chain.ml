(* Service chain: predict a firewall -> NAT -> tunnel-gateway chain on
   one NIC, per stage and end to end — and compare deployment targets.

   Run:  dune exec examples/service_chain.exe *)

module W = Clara_workload
module L = Clara_lnic

let () =
  let profile =
    W.Profile.make ~tcp_fraction:0.9 ~flow_count:5_000
      ~payload:(W.Dist.Fixed 400) ~rate_pps:60_000. ~packets:10_000 ()
  in
  let sources =
    [ Clara_nfs.Firewall.source ();
      Clara_nfs.Nat.source ();
      Clara_nfs.Tunnel_gw.source () ]
  in
  let trace = W.Trace.synthesize ~seed:5L profile in
  List.iter
    (fun (tname, target) ->
      Printf.printf "\n=== %s ===\n" tname;
      match Clara.Chain.analyze target ~sources ~profile with
      | Error e -> Printf.printf "chain does not map: %s\n" e
      | Ok chain ->
          (* Per-stage standalone predictions for context. *)
          List.iter2
            (fun name src ->
              match Clara.analyze_for_profile target ~source:src ~profile with
              | Ok a ->
                  let p = Clara.predict a trace in
                  Printf.printf "  %-12s standalone %8.0f cyc\n" name
                    p.Clara_predict.Latency.mean_cycles
              | Error e -> Printf.printf "  %-12s error: %s\n" name e)
            (Clara.Chain.stage_names chain)
            sources;
          let p = Clara.Chain.predict chain trace in
          Printf.printf "  %-12s end-to-end %8.0f cyc (emit %.0f%%, p99 %.0f)\n" "chain"
            p.Clara_predict.Latency.mean_cycles
            (100. *. p.Clara_predict.Latency.emitted_fraction)
            p.Clara_predict.Latency.p99_cycles)
    L.Targets.nics
