(* NIC selection: "which SmartNIC model is best for my workloads?"

   The paper's third use case (§1): target the same unported NFs at
   different SmartNIC backends — here a Netronome-like NPU-array NIC
   with match/action + flow-cache hardware, and an ARM-SoC NIC with
   faster general cores but no table hardware — and compare predictions
   per workload, before buying either.

   Run:  dune exec examples/nic_selection.exe *)

module W = Clara_workload
module L = Clara_lnic

let () =
  (* The shared registry of NIC models the CLI and sweep specs use. *)
  let targets = L.Targets.nics in
  let workloads =
    [ ( "lpm-20k / small packets (table-heavy)",
        Clara_nfs.Lpm.source ~entries:20_000,
        W.Profile.make ~payload:(W.Dist.Fixed 128) ~packets:5_000 ~flow_count:4_000
          ~rate_pps:60_000. () );
      ( "dpi / large packets (compute-heavy)",
        Clara_nfs.Dpi.source,
        W.Profile.make ~payload:(W.Dist.Fixed 1200) ~packets:5_000 ~flow_count:4_000
          ~rate_pps:60_000. () );
      ( "nat / mixed traffic",
        Clara_nfs.Nat.source (),
        W.Profile.make ~payload:(W.Dist.Fixed 400) ~packets:5_000 ~flow_count:8_000
          ~rate_pps:60_000. () ) ]
  in
  List.iter
    (fun (wname, source, profile) ->
      Printf.printf "\n%s\n" wname;
      let results =
        List.filter_map
          (fun (tname, lnic) ->
            match Clara.analyze_for_profile lnic ~source ~profile with
            | Error e ->
                Printf.printf "  %-16s error: %s\n" tname e;
                None
            | Ok a ->
                let p = Clara.predict_profile a profile in
                let tp =
                  Clara_predict.Throughput.estimate lnic a.Clara.df a.Clara.mapping
                in
                let freq =
                  match L.Graph.general_cores lnic with
                  | u :: _ -> float_of_int u.L.Unit_.freq_mhz
                  | [] -> 1.
                in
                let us = p.Clara_predict.Latency.mean_cycles /. freq in
                Printf.printf "  %-16s latency %8.2f us   max tput %10.0f pps\n" tname us
                  tp.Clara_predict.Throughput.max_pps;
                Some (tname, us))
          targets
      in
      match List.sort (fun (_, a) (_, b) -> compare a b) results with
      | (winner, _) :: _ -> Printf.printf "  -> pick: %s\n" winner
      | [] -> ())
    workloads
