#!/bin/sh
# Bench smoke: run the nicsim section of the bench harness.
#
# The section always enforces correctness, regardless of environment:
#   - fast path byte-identical to the event path on stateless NFs
#     (latency summary, drops, hit rates), with >0 packets replayed;
#   - zero replays on a stateful NF, results identical to Event_only;
#   - sharded runs byte-identical between 1 domain and N domains.
#
# The throughput gates — the 10x fast-path floor on the op-dense NF and
# the >20% packets/sec regression check against the committed
# BENCH_nicsim.json — print warnings by default and only fail when
# CLARA_BENCH_ENFORCE=1, because shared CI runners are too noisy for
# hard wall-clock gates.
#
# The fresh snapshot is written to CLARA_BENCH_JSON (default: a temp
# file, so a smoke run never dirties the committed baseline).
set -eu
cd "$(dirname "$0")/.."
: "${CLARA_BENCH_JSON:=$(mktemp "${TMPDIR:-/tmp}/clara-bench-nicsim.XXXXXX")}"
export CLARA_BENCH_JSON
dune exec bench/main.exe -- nicsim
echo "bench smoke OK (snapshot: $CLARA_BENCH_JSON)"
