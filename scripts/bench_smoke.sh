#!/bin/sh
# Bench smoke: run the nicsim, offpath, tenants and bounds sections of
# the bench harness.
#
# The sections always enforce correctness, regardless of environment:
#   - static per-type latency intervals contain the simulated per-type
#     means for every example NF on netronome/soc/bluefield, analyses
#     stay under the 100 ms per-NF budget, and the SLO predicate prunes
#     at least one (but not every) cell of the standard sweep grid;
#   - fast path byte-identical to the event path on stateless NFs
#     (latency summary, drops, hit rates), with >0 packets replayed;
#   - zero replays on a stateful NF, results identical to Event_only;
#   - sharded runs byte-identical between 1 domain and N domains;
#   - repeated N-tenant WRR runs byte-identical (scheduler determinism);
#   - run_pair == run_tenants at N=2 with equal weights;
#   - under skewed weights the heavy tenant drops no more and admits
#     no fewer packets than a starved weight-1 tenant (goodput/drops,
#     not p99 — percentiles cover admitted packets only, so a starved
#     tenant shedding its worst-wait packets reports a deceptive p99);
#   - on the off-path bluefield target: the pinned hit-ratio sweep is
#     deterministic and monotone with a 0-vs-1 gap of at least the
#     upcall cost, predict-vs-sim p50 agreement is within bound, and
#     the netronome/bluefield verdicts diverge (lpm vs dpi).
#
# The throughput gates — the 10x fast-path floor on the op-dense NF and
# the >20% packets/sec regression check against the committed
# BENCH_nicsim.json — print warnings by default and only fail when
# CLARA_BENCH_ENFORCE=1, because shared CI runners are too noisy for
# hard wall-clock gates.
#
# The fresh snapshot is written to CLARA_BENCH_JSON (default: a temp
# file, so a smoke run never dirties the committed baseline).  The
# committed baseline may be schema v1 (nicsim numbers only) or v2
# (adds provenance + the offpath gap entry); the bench reads both, and
# fresh snapshots are always written as v2.
set -eu
cd "$(dirname "$0")/.."
: "${CLARA_BENCH_JSON:=$(mktemp "${TMPDIR:-/tmp}/clara-bench-nicsim.XXXXXX")}"
export CLARA_BENCH_JSON
dune exec bench/main.exe -- nicsim offpath tenants bounds

# The snapshot must be valid JSON with a schema the readers accept.
dune exec bin/clara_cli.exe -- json-check "$CLARA_BENCH_JSON"
schema=$(sed -n 's/.*"schema":[[:space:]]*\([0-9]*\).*/\1/p' "$CLARA_BENCH_JSON" | head -1)
case "$schema" in
  1|2) echo "snapshot schema v$schema OK" ;;
  *) echo "unexpected snapshot schema '$schema'" >&2; exit 1 ;;
esac
echo "bench smoke OK (snapshot: $CLARA_BENCH_JSON)"
